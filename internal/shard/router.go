package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/obs"
	"knnjoin/internal/serve"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// scanFunc executes one kNN scan run against a shard. The router's
// production implementation is an HTTP call with replica failover; the
// property tests substitute a local function over the full index.
type scanFunc func(shard int, req *ScanRequest) (*ScanResponse, error)

// rangeFunc is scanFunc's range-query counterpart.
type rangeFunc func(shard int, req *RangeScanRequest) (*RangeScanResponse, error)

// routerState is the routing table for one index generation, swapped
// atomically on reload: the metadata-only index view that drives the
// walk, the cell → shard owner map, and the generation number every
// delegated request carries.
type routerState struct {
	meta  *vindex.Index
	owner []int
	gen   int64
}

// replicaSet tracks one shard's replicas and which one the router
// currently prefers.
type replicaSet struct {
	urls      []string
	preferred atomic.Int32
}

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Timeout bounds each shard RPC attempt; on expiry the router fails
	// over to the next replica (default 5s). This is what turns a frozen
	// replica into a recoverable fault.
	Timeout time.Duration
	// ProbeInterval enables a background health prober that demotes
	// unresponsive preferred replicas between queries; zero disables it
	// (queries still fail over on their own).
	ProbeInterval time.Duration
	// Tracer, when non-nil, records one client span per shard scan RPC,
	// parented under the serve request span when the query carries one.
	// Nil disables tracing; responses are byte-identical either way.
	Tracer *obs.Tracer
	// Metrics, when non-nil, is where the router registers its shard_*
	// families — pass the serve.Server's registry so one /metrics page
	// covers both. Nil disables metric export (counters still no-op
	// safely).
	Metrics *obs.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// Router fans queries out over a shard cluster while replaying the
// exact single-node partition walk (see the package comment for why
// byte-identity forces that design). It implements serve.Backend, so a
// plain serve.Server in front of it speaks the identical HTTP API —
// and produces the identical bytes — as one over a local index.
type Router struct {
	cluster *Cluster
	cfg     RouterConfig
	client  *http.Client
	probeC  *http.Client
	state   atomic.Pointer[routerState]
	reps    []*replicaSet

	queries   atomic.Int64
	scanRPCs  atomic.Int64
	contacted atomic.Int64
	failovers atomic.Int64

	// /metrics mirrors of the counters above (nil-safe no-ops when
	// RouterConfig.Metrics is nil), plus the RPC tracer.
	tracer     *obs.Tracer
	mQueries   *obs.Counter
	mScanRPCs  *obs.Counter
	mContacted *obs.Counter
	mFailovers *obs.Counter

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a router over a started cluster and, when
// ProbeInterval is set, starts its health prober. Close the router
// before closing the cluster.
func NewRouter(c *Cluster, cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cluster: c,
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.Timeout},
		probeC:  &http.Client{Timeout: cfg.Timeout},
		tracer:  cfg.Tracer,
		stop:    make(chan struct{}),
	}
	r.mQueries = cfg.Metrics.Counter("shard_router_queries_total", "Queries routed (batch members counted individually).")
	r.mScanRPCs = cfg.Metrics.Counter("shard_router_scan_rpcs_total", "Successful /shard/scan RPCs issued.")
	r.mContacted = cfg.Metrics.Counter("shard_router_shards_contacted_total", "Distinct shards contacted, summed over queries.")
	r.mFailovers = cfg.Metrics.Counter("shard_router_failovers_total", "Replica failover transitions (query retries and prober demotions).")
	r.state.Store(&routerState{meta: c.Meta(), owner: c.Owner(), gen: c.Gen()})
	eps := c.Endpoints()
	r.reps = make([]*replicaSet, len(eps))
	for s, urls := range eps {
		r.reps[s] = &replicaSet{urls: urls}
	}
	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probe()
	}
	return r
}

// Close stops the background prober (the cluster is closed separately).
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// knnWalk replays the single-node kNN walk over routing metadata,
// delegating each maximal run of scan-needing partitions on one shard
// as a single RPC. Local decisions are exact, not approximate: the
// router's θ equals the single-node θ at every step because θ only
// changes inside delegated scans, whose results come back before the
// walk continues. Partitions the walk prunes are consumed locally even
// mid-run (pruning is monotone in θ — a cell prunable at the current θ
// stays prunable after the run tightens it — so the decision and its
// accounting match the single-node walk exactly), which keeps runs
// long across interleaved foreign cells. Returns the result, the
// exact single-node Stats, and the number of distinct shards
// contacted.
func knnWalk(meta *vindex.Index, owner []int, gen int64, q vector.Point, k int, scan scanFunc) ([]nnheap.Candidate, vindex.Stats, int, error) {
	var st vindex.Stats
	if k <= 0 {
		return nil, st, 0, nil
	}
	qPart, qDist := meta.AssignQuery(q, &st.DistComputations)
	theta := meta.StartingBound(q, k, &st.DistComputations)
	order, gaps := meta.QueryOrder(q, qPart, qDist, &st.DistComputations)
	heap := nnheap.NewKHeap(k)
	contacted := make(map[int]bool)

	i := 0
	for i < len(order) {
		j := order[i]
		if meta.PartitionLen(j) == 0 {
			i++
			continue
		}
		_, _, kind := meta.RouteStep(j, qPart, qDist, gaps[j], theta)
		if kind == vindex.StepPruned {
			st.PartitionsPruned++
			i++
			continue
		}
		// StepScan: open a run on j's shard and extend it as far as the
		// visit order allows — consuming empty and prunable cells locally,
		// stopping at the first foreign cell that needs scanning.
		sh := owner[j]
		parts := []ScanPart{{J: j, Gap: math.Float64bits(gaps[j])}}
		e := i + 1
		for e < len(order) {
			je := order[e]
			if meta.PartitionLen(je) == 0 {
				e++
				continue
			}
			_, _, kindE := meta.RouteStep(je, qPart, qDist, gaps[je], theta)
			if kindE == vindex.StepPruned {
				st.PartitionsPruned++
				e++
				continue
			}
			if owner[je] != sh {
				break
			}
			parts = append(parts, ScanPart{J: je, Gap: math.Float64bits(gaps[je])})
			e++
		}
		resp, err := scan(sh, &ScanRequest{
			Gen: gen, K: k, QPart: qPart, QDist: math.Float64bits(qDist),
			Q: pointBits(q), Theta: math.Float64bits(theta), Heap: heapWire(heap), Parts: parts,
		})
		if err != nil {
			return nil, st, len(contacted), err
		}
		theta = math.Float64frombits(resp.Theta)
		heap, err = wireHeap(k, resp.Heap)
		if err != nil {
			return nil, st, len(contacted), fmt.Errorf("shard %d returned a corrupt heap: %w", sh, err)
		}
		st.DistComputations += resp.DistComputations
		st.PartitionsScanned += resp.PartitionsScanned
		st.PartitionsPruned += resp.PartitionsPruned
		contacted[sh] = true
		i = e
	}
	return meta.FinishKNN(heap), st, len(contacted), nil
}

// rangeWalk mirrors voronoi.RangeSelect's accounting over routing
// metadata, batching each shard's surviving windows into one RPC. The
// bound θ of a range query is the fixed radius, so unlike kNN there is
// no sequential dependency — the per-shard window lists are fully
// determined up front and the row charges are order-independent sums.
func rangeWalk(meta *vindex.Index, owner []int, gen int64, q vector.Point, radius float64, scan rangeFunc) ([]codec.Object, vindex.Stats, int, error) {
	var st vindex.Stats
	qPart, qDist := meta.AssignQuery(q, &st.DistComputations)
	perShard := make(map[int][]RangePart)
	for j := 0; j < meta.NumPartitions(); j++ {
		if meta.PartitionLen(j) == 0 {
			continue
		}
		qToPj := qDist
		if j != qPart {
			qToPj = meta.Metric().Dist(q, meta.Pivots()[j])
			st.DistComputations++
		}
		lo, hi, kind := meta.RouteStep(j, qPart, qDist, qToPj, radius)
		if kind != vindex.StepScan {
			continue
		}
		perShard[owner[j]] = append(perShard[owner[j]], RangePart{J: j, Lo: math.Float64bits(lo), Hi: math.Float64bits(hi)})
	}
	shards := make([]int, 0, len(perShard))
	for sh := range perShard {
		shards = append(shards, sh)
	}
	sort.Ints(shards)
	var out []codec.Object
	for _, sh := range shards {
		resp, err := scan(sh, &RangeScanRequest{Gen: gen, Q: pointBits(q), Radius: math.Float64bits(radius), Parts: perShard[sh]})
		if err != nil {
			return nil, st, 0, err
		}
		st.DistComputations += resp.Rows
		out = append(out, wireObjects(resp.Matches)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, st, len(shards), nil
}

// KNNWithStats implements serve.Backend over the cluster. The context
// may carry the serve request span (obs.SpanFromContext); scan RPCs are
// recorded as client spans under it.
func (r *Router) KNNWithStats(ctx context.Context, q vector.Point, k int) ([]nnheap.Candidate, vindex.Stats, error) {
	st := r.state.Load()
	res, stats, n, err := knnWalk(st.meta, st.owner, st.gen, q, k, r.boundScan(ctx))
	r.queries.Add(1)
	r.mQueries.Inc()
	r.contacted.Add(int64(n))
	r.mContacted.Add(int64(n))
	return res, stats, err
}

// KNNBatchWithStats answers the batch over ONE routing state, like the
// single-node server answers a batch over one snapshot, so a reload
// mid-batch cannot mix generations within a response.
func (r *Router) KNNBatchWithStats(ctx context.Context, qs []vector.Point, ks []int) ([][]nnheap.Candidate, []vindex.Stats, error) {
	st := r.state.Load()
	scan := r.boundScan(ctx)
	results := make([][]nnheap.Candidate, len(qs))
	stats := make([]vindex.Stats, len(qs))
	for i, q := range qs {
		res, s, n, err := knnWalk(st.meta, st.owner, st.gen, q, ks[i], scan)
		if err != nil {
			return nil, nil, fmt.Errorf("query %d: %w", i, err)
		}
		r.queries.Add(1)
		r.mQueries.Inc()
		r.contacted.Add(int64(n))
		r.mContacted.Add(int64(n))
		results[i], stats[i] = res, s
	}
	return results, stats, nil
}

// RangeWithStats implements serve.Backend over the cluster.
func (r *Router) RangeWithStats(ctx context.Context, q vector.Point, radius float64) ([]codec.Object, vindex.Stats, error) {
	st := r.state.Load()
	res, stats, n, err := rangeWalk(st.meta, st.owner, st.gen, q, radius, r.boundRange(ctx))
	r.queries.Add(1)
	r.mQueries.Inc()
	r.contacted.Add(int64(n))
	r.mContacted.Add(int64(n))
	return res, stats, err
}

// Len reports the object count of the current generation.
func (r *Router) Len() int { return r.state.Load().meta.Len() }

// Dim reports the dimensionality of the indexed points.
func (r *Router) Dim() int { return r.state.Load().meta.Dim() }

// NumPartitions reports the Voronoi cell count.
func (r *Router) NumPartitions() int { return r.state.Load().meta.NumPartitions() }

// Kernel reports the scan tier the shard replicas run. The router
// deliberately does not implement SetKernel: the tier is fixed at
// cluster spawn.
func (r *Router) Kernel() vector.Kernel { return r.cluster.cfg.Kernel }

// Loader is the serve.Config.Loader for a sharded server: /reload
// pushes the new index file to every shard replica, then swaps the
// routing table, so the server's snapshot swap publishes a fully
// consistent new generation.
func (r *Router) Loader(path string) (serve.Backend, error) {
	meta, owner, gen, err := r.cluster.Reload(path)
	if err != nil {
		return nil, err
	}
	r.state.Store(&routerState{meta: meta, owner: owner, gen: gen})
	return r, nil
}

// boundScan binds the request context into the production scanFunc:
// POST /shard/scan with failover, one client span per RPC.
func (r *Router) boundScan(ctx context.Context) scanFunc {
	parent := obs.SpanFromContext(ctx).Context()
	return func(sh int, req *ScanRequest) (*ScanResponse, error) {
		req.TraceID, req.SpanParent = parent.TraceID, parent.SpanID
		span := r.tracer.StartSpan("scan-rpc", parent)
		defer span.End()
		span.SetAttr("shard", fmt.Sprint(sh))
		span.SetAttr("parts", fmt.Sprint(len(req.Parts)))
		var resp ScanResponse
		if err := r.call(sh, "/shard/scan", req, &resp); err != nil {
			span.SetAttr("outcome", "error")
			return nil, err
		}
		span.SetAttr("outcome", "ok")
		r.scanRPCs.Add(1)
		r.mScanRPCs.Inc()
		return &resp, nil
	}
}

// boundRange is boundScan's range-query counterpart.
func (r *Router) boundRange(ctx context.Context) rangeFunc {
	parent := obs.SpanFromContext(ctx).Context()
	return func(sh int, req *RangeScanRequest) (*RangeScanResponse, error) {
		req.TraceID, req.SpanParent = parent.TraceID, parent.SpanID
		span := r.tracer.StartSpan("range-rpc", parent)
		defer span.End()
		span.SetAttr("shard", fmt.Sprint(sh))
		span.SetAttr("parts", fmt.Sprint(len(req.Parts)))
		var resp RangeScanResponse
		if err := r.call(sh, "/shard/range", req, &resp); err != nil {
			span.SetAttr("outcome", "error")
			return nil, err
		}
		span.SetAttr("outcome", "ok")
		return &resp, nil
	}
}

// call POSTs to shard sh's preferred replica, failing over through the
// remaining replicas on timeout, refusal, or non-200 — safe because
// scans are pure reads of an immutable generation, so a retried scan
// returns the same bytes the failed replica would have. A success on a
// non-preferred replica promotes it for subsequent requests.
func (r *Router) call(sh int, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	rs := r.reps[sh]
	n := len(rs.urls)
	start := int(rs.preferred.Load())
	var lastErr error
	for t := 0; t < n; t++ {
		idx := (start + t) % n
		raw, err := r.post(rs.urls[idx]+path, body)
		if err != nil {
			lastErr = fmt.Errorf("replica %d: %w", idx, err)
			r.failovers.Add(1)
			r.mFailovers.Inc()
			continue
		}
		if idx != int(rs.preferred.Load()) {
			rs.preferred.Store(int32(idx))
		}
		return json.Unmarshal(raw, resp)
	}
	return fmt.Errorf("shard %d: all %d replicas failed: %w", sh, n, lastErr)
}

func (r *Router) post(url string, body []byte) ([]byte, error) {
	resp, err := r.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(raw, 256))
	}
	return raw, nil
}

func truncate(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

// probe periodically health-checks each shard's preferred replica and
// demotes it to the next healthy one on failure, so queries after a
// freeze stop paying the timeout on every request.
func (r *Router) probe() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			for _, rs := range r.reps {
				p := int(rs.preferred.Load())
				if r.healthy(rs.urls[p]) {
					continue
				}
				for d := 1; d < len(rs.urls); d++ {
					cand := (p + d) % len(rs.urls)
					if r.healthy(rs.urls[cand]) {
						rs.preferred.CompareAndSwap(int32(p), int32(cand))
						r.failovers.Add(1)
						r.mFailovers.Inc()
						break
					}
				}
			}
		}
	}
}

func (r *Router) healthy(url string) bool {
	resp, err := r.probeC.Get(url + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// RouterStats is a point-in-time snapshot of the router's counters.
type RouterStats struct {
	// Queries is the number of queries routed (batch members counted
	// individually); ScanRPCs the number of kNN scan RPCs issued.
	Queries int64 `json:"queries"`
	// ScanRPCs counts successful /shard/scan calls.
	ScanRPCs int64 `json:"scan_rpcs"`
	// ShardsContactedTotal sums distinct-shards-contacted over queries;
	// AvgShardsContacted is that divided by Queries.
	ShardsContactedTotal int64 `json:"shards_contacted_total"`
	// AvgShardsContacted is the per-query mean of distinct shards hit.
	AvgShardsContacted float64 `json:"avg_shards_contacted"`
	// Failovers counts replica failover transitions (query-path retries
	// and prober demotions).
	Failovers int64 `json:"failovers"`
	// Gen is the current routing generation; Preferred the current
	// preferred replica per shard.
	Gen int64 `json:"gen"`
	// Preferred is the preferred replica index per shard.
	Preferred []int `json:"preferred"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Queries:              r.queries.Load(),
		ScanRPCs:             r.scanRPCs.Load(),
		ShardsContactedTotal: r.contacted.Load(),
		Failovers:            r.failovers.Load(),
		Gen:                  r.state.Load().gen,
		Preferred:            make([]int, len(r.reps)),
	}
	if st.Queries > 0 {
		st.AvgShardsContacted = float64(st.ShardsContactedTotal) / float64(st.Queries)
	}
	for s, rs := range r.reps {
		st.Preferred[s] = int(rs.preferred.Load())
	}
	return st
}
