package shard

import (
	"math"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

func buildIndex(t *testing.T, objs []codec.Object) *vindex.Index {
	t.Helper()
	ix, err := vindex.Build(objs, vindex.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// localScan executes scan requests against the full index in-process,
// recording which shards were contacted and checking the router never
// sends a shard a partition it does not own.
type localScan struct {
	t         *testing.T
	ix        *vindex.Index
	cells     [][]int
	contacted map[int]bool
	rpcs      int
}

func newLocalScan(t *testing.T, ix *vindex.Index, cells [][]int) *localScan {
	return &localScan{t: t, ix: ix, cells: cells, contacted: map[int]bool{}}
}

func (l *localScan) owns(sh, j int) bool {
	for _, c := range l.cells[sh] {
		if c == j {
			return true
		}
	}
	return false
}

func (l *localScan) scan(sh int, req *ScanRequest) (*ScanResponse, error) {
	l.contacted[sh] = true
	l.rpcs++
	for _, p := range req.Parts {
		if !l.owns(sh, p.J) {
			l.t.Errorf("router sent partition %d to shard %d, which does not own it", p.J, sh)
		}
	}
	return execScan(l.ix, req)
}

func (l *localScan) rangeScan(sh int, req *RangeScanRequest) (*RangeScanResponse, error) {
	l.contacted[sh] = true
	for _, p := range req.Parts {
		if !l.owns(sh, p.J) {
			l.t.Errorf("router sent partition %d to shard %d, which does not own it", p.J, sh)
		}
	}
	return execRangeScan(l.ix, req)
}

// TestKNNWalkByteIdentity is the core property: the router's delegated
// walk reproduces the single-node query EXACTLY — same neighbors, same
// distances to the bit, same Stats — for every shard count, and every
// shard holding a true neighbor is in the contacted set (bound
// soundness).
func TestKNNWalkByteIdentity(t *testing.T) {
	objs := dataset.Gaussian(1500, 4, 8, 0.05, 100, 7)
	ix := buildIndex(t, objs)
	meta := ix.MetaOnly()
	points := map[int64]vector.Point{}
	for _, o := range objs {
		points[o.ID] = o.Point
	}

	for _, shards := range []int{1, 2, 3, 4, 7} {
		owner, cells := AssignCells(ix, shards)
		for trial := 0; trial < 30; trial++ {
			q := dataset.Gaussian(1, 4, 8, 0.3, 100, int64(trial)+900)[0].Point
			k := 1 + trial%12
			ls := newLocalScan(t, ix, cells)
			got, gotSt, contacted, err := knnWalk(meta, owner, 1, q, k, ls.scan)
			if err != nil {
				t.Fatalf("shards=%d trial=%d: %v", shards, trial, err)
			}
			want, wantSt := ix.KNNWithStats(q, k)
			if gotSt != wantSt {
				t.Fatalf("shards=%d trial=%d: stats differ: got %+v want %+v", shards, trial, gotSt, wantSt)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d trial=%d: got %d neighbors, want %d", shards, trial, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Fatalf("shards=%d trial=%d: neighbor %d differs: got %+v want %+v",
						shards, trial, i, got[i], want[i])
				}
			}
			if contacted != len(ls.contacted) {
				t.Fatalf("shards=%d trial=%d: contacted count %d, recorder saw %d", shards, trial, contacted, len(ls.contacted))
			}
			// Bound soundness: the shard owning every true neighbor's cell
			// must have been contacted.
			for _, c := range want {
				cell, _ := meta.AssignQuery(points[c.ID], nil)
				if sh := owner[cell]; !ls.contacted[sh] {
					t.Fatalf("shards=%d trial=%d: neighbor %d lives on shard %d (cell %d), never contacted",
						shards, trial, c.ID, sh, cell)
				}
			}
		}
	}
}

// TestKNNWalkRunBatching checks the efficiency half of the routing
// design on clustered data: queries touch fewer shards than exist, and
// consecutive same-shard cells collapse into single RPCs.
func TestKNNWalkRunBatching(t *testing.T) {
	objs := dataset.Gaussian(2000, 4, 6, 0.03, 100, 11)
	ix := buildIndex(t, objs)
	meta := ix.MetaOnly()
	const shards = 4
	owner, cells := AssignCells(ix, shards)

	totalContacted, queries := 0, 0
	for trial := 0; trial < 40; trial++ {
		// Query near the data clusters, where pruning has teeth.
		q := dataset.Gaussian(1, 4, 6, 0.05, 100, int64(trial)+500)[0].Point
		ls := newLocalScan(t, ix, cells)
		_, _, contacted, err := knnWalk(meta, owner, 1, q, 10, ls.scan)
		if err != nil {
			t.Fatal(err)
		}
		if ls.rpcs < contacted {
			t.Fatalf("trial %d: %d RPCs for %d shards contacted", trial, ls.rpcs, contacted)
		}
		totalContacted += contacted
		queries++
	}
	avg := float64(totalContacted) / float64(queries)
	if avg >= shards {
		t.Fatalf("routing never pruned a shard: avg %.2f of %d shards contacted", avg, shards)
	}
	t.Logf("avg shards contacted: %.2f of %d", avg, shards)
}

// TestRangeWalkByteIdentity: the sharded range query returns the exact
// single-node objects and Stats.
func TestRangeWalkByteIdentity(t *testing.T) {
	objs := dataset.Gaussian(1200, 3, 5, 0.08, 100, 13)
	ix := buildIndex(t, objs)
	meta := ix.MetaOnly()

	for _, shards := range []int{1, 2, 4} {
		owner, cells := AssignCells(ix, shards)
		for trial := 0; trial < 20; trial++ {
			q := dataset.Gaussian(1, 3, 5, 0.2, 100, int64(trial)+300)[0].Point
			radius := 2.0 + float64(trial)
			ls := newLocalScan(t, ix, cells)
			got, gotSt, _, err := rangeWalk(meta, owner, 1, q, radius, ls.rangeScan)
			if err != nil {
				t.Fatalf("shards=%d trial=%d: %v", shards, trial, err)
			}
			want, wantSt := ix.RangeWithStats(q, radius)
			if gotSt != wantSt {
				t.Fatalf("shards=%d trial=%d: stats differ: got %+v want %+v", shards, trial, gotSt, wantSt)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d trial=%d: got %d objects, want %d", shards, trial, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("shards=%d trial=%d: object %d: got ID %d want %d", shards, trial, i, got[i].ID, want[i].ID)
				}
				for d := range got[i].Point {
					if math.Float64bits(got[i].Point[d]) != math.Float64bits(want[i].Point[d]) {
						t.Fatalf("shards=%d trial=%d: object %d coordinate %d differs", shards, trial, i, d)
					}
				}
			}
		}
	}
}
