package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// ClusterConfig configures StartCluster.
type ClusterConfig struct {
	// IndexPath is the index file every replica loads its cell subset
	// from (built by `knnindex build` or vindex.Save).
	IndexPath string
	// Shards is the number of shards the cells are partitioned across.
	Shards int
	// Replicas is the number of identical processes per shard (default 1).
	Replicas int
	// Kernel is the distance scan tier every replica runs.
	Kernel vector.Kernel
	// Faults is the deterministic fault plan shipped to every replica.
	Faults *FaultPlan
	// Dir holds the replica address files (default: a temp dir removed
	// on Close).
	Dir string
	// StartTimeout bounds waiting for every replica to publish its
	// address and pass a health check (default 30s).
	StartTimeout time.Duration
	// TraceDir, when set, makes every replica write scan spans as JSONL
	// there; pair it with a router tracer over the same directory so
	// cmd/knntrace can merge one coherent trace.
	TraceDir string
	// Pprof exposes /debug/pprof on every replica.
	Pprof bool
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 30 * time.Second
	}
	return c
}

// Cluster is a running set of Shards×Replicas shard processes plus the
// cell assignment that routes to them. Start with StartCluster, stop
// with Close.
type Cluster struct {
	cfg    ClusterConfig
	dir    string
	ownDir bool

	meta   *vindex.Index // routing-only view of the current generation
	owner  []int         // cell → shard
	assign [][]int       // shard → cells
	gen    int64

	mu    sync.Mutex
	procs []*exec.Cmd
	eps   [][]string // [shard][replica] base URL
}

// StartCluster loads the index's metadata, partitions its cells with
// AssignCells, re-executes the current binary once per replica (the
// child enters RunShardIfSpawned), and waits until every replica is
// serving.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", cfg.Shards)
	}
	ix, err := vindex.LoadFile(cfg.IndexPath)
	if err != nil {
		return nil, err
	}
	owner, assign := AssignCells(ix, cfg.Shards)
	c := &Cluster{cfg: cfg, meta: ix.MetaOnly(), owner: owner, assign: assign, gen: 1, dir: cfg.Dir}
	if c.dir == "" {
		if c.dir, err = os.MkdirTemp("", "knnshard-*"); err != nil {
			return nil, err
		}
		c.ownDir = true
	}
	exe, err := os.Executable()
	if err != nil {
		c.cleanup()
		return nil, err
	}
	addrFiles := make([][]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		addrFiles[s] = make([]string, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			addrFiles[s][r] = filepath.Join(c.dir, fmt.Sprintf("shard-%d-%d.addr", s, r))
			raw, err := json.Marshal(procConfig{
				Index: cfg.IndexPath, Cells: assign[s], Shard: s, Replica: r,
				Gen: 1, AddrFile: addrFiles[s][r], Kernel: cfg.Kernel.String(), Faults: cfg.Faults,
				TraceDir: cfg.TraceDir, Pprof: cfg.Pprof,
			})
			if err != nil {
				c.Close()
				return nil, err
			}
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(), shardEnv+"="+string(raw))
			cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
			if err := cmd.Start(); err != nil {
				c.Close()
				return nil, fmt.Errorf("spawning shard %d replica %d: %w", s, r, err)
			}
			c.procs = append(c.procs, cmd)
		}
	}
	if err := c.await(addrFiles); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// await polls for every replica's address file, then health-checks it.
func (c *Cluster) await(addrFiles [][]string) error {
	deadline := time.Now().Add(c.cfg.StartTimeout)
	c.eps = make([][]string, len(addrFiles))
	client := &http.Client{Timeout: 2 * time.Second}
	for s := range addrFiles {
		c.eps[s] = make([]string, len(addrFiles[s]))
		for r, file := range addrFiles[s] {
			for {
				raw, err := os.ReadFile(file)
				if err == nil && len(raw) > 0 {
					c.eps[s][r] = "http://" + strings.TrimSpace(string(raw))
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("shard %d replica %d: no address after %v", s, r, c.cfg.StartTimeout)
				}
				time.Sleep(10 * time.Millisecond)
			}
			for {
				resp, err := client.Get(c.eps[s][r] + "/healthz")
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("shard %d replica %d: unhealthy after %v", s, r, c.cfg.StartTimeout)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	return nil
}

// Meta returns the routing-only index view of the generation the
// cluster started with.
func (c *Cluster) Meta() *vindex.Index { return c.meta }

// Owner returns the cell → shard map of the initial generation.
func (c *Cluster) Owner() []int { return c.owner }

// Assignment returns the per-shard cell lists of the initial generation.
func (c *Cluster) Assignment() [][]int { return c.assign }

// Endpoints returns the per-shard replica base URLs.
func (c *Cluster) Endpoints() [][]string { return c.eps }

// Gen returns the initial generation number.
func (c *Cluster) Gen() int64 { return c.gen }

// Reload loads a new index file, recomputes the cell assignment, and
// pushes the new generation to every replica of every shard (each
// retains the previous generation, so walks in flight keep completing
// consistently). It returns the new routing state for the router to
// swap in atomically. Every replica must be reachable: a reload is an
// administrative operation against a healthy cluster, and on failure
// the old generation simply keeps serving everywhere.
func (c *Cluster) Reload(path string) (meta *vindex.Index, owner []int, gen int64, err error) {
	ix, err := vindex.LoadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	owner, assign := AssignCells(ix, c.cfg.Shards)
	c.mu.Lock()
	c.gen++
	gen = c.gen
	c.mu.Unlock()
	client := &http.Client{Timeout: c.cfg.StartTimeout}
	for s := range c.eps {
		body, err := json.Marshal(ReloadShardRequest{Gen: gen, Index: path, Cells: assign[s]})
		if err != nil {
			return nil, nil, 0, err
		}
		for r, url := range c.eps[s] {
			resp, err := client.Post(url+"/shard/reload", "application/json", strings.NewReader(string(body)))
			if err != nil {
				return nil, nil, 0, fmt.Errorf("reloading shard %d replica %d: %w", s, r, err)
			}
			raw := make([]byte, 512)
			n, _ := resp.Body.Read(raw)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, nil, 0, fmt.Errorf("reloading shard %d replica %d: status %d: %s", s, r, resp.StatusCode, raw[:n])
			}
		}
	}
	return ix.MetaOnly(), owner, gen, nil
}

func (c *Cluster) cleanup() {
	if c.ownDir {
		os.RemoveAll(c.dir)
	}
}

// Close kills every replica process, reaps it, and removes the scratch
// dir when the cluster created it.
func (c *Cluster) Close() {
	for _, cmd := range c.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range c.procs {
		cmd.Wait()
	}
	c.cleanup()
}
