package shard

import (
	"math"
	"testing"

	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// TestHeapWireRoundTrip: the wire form preserves the heap's internal
// array VERBATIM — the property byte-identity under distance ties
// depends on, because KHeap eviction order follows the array layout.
func TestHeapWireRoundTrip(t *testing.T) {
	h := nnheap.NewKHeap(4)
	for _, c := range []nnheap.Candidate{
		{ID: 1, Dist: 9}, {ID: 2, Dist: 3}, {ID: 3, Dist: 9}, {ID: 4, Dist: 5}, {ID: 5, Dist: 4},
	} {
		h.Push(c)
	}
	before := h.Items()
	restored, err := wireHeap(4, heapWire(h))
	if err != nil {
		t.Fatal(err)
	}
	after := restored.Items()
	if len(before) != len(after) {
		t.Fatalf("length changed: %d → %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("slot %d changed: %+v → %+v", i, before[i], after[i])
		}
	}
}

func TestWireHeapRejectsCorruptState(t *testing.T) {
	if _, err := wireHeap(0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := wireHeap(1, []WireCand{{ID: 1, Dist: 0}, {ID: 2, Dist: 0}}); err == nil {
		t.Error("overfull heap accepted")
	}
	// Max-heap invariant violated: child larger than root.
	bad := []WireCand{
		{ID: 1, Dist: math.Float64bits(1)},
		{ID: 2, Dist: math.Float64bits(5)},
	}
	if _, err := wireHeap(4, bad); err == nil {
		t.Error("invariant-violating heap accepted")
	}
}

func TestPointBitsRoundTrip(t *testing.T) {
	p := vector.Point{1.5, -0.0, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	got := bitsPoint(pointBits(p))
	for i := range p {
		if math.Float64bits(got[i]) != math.Float64bits(p[i]) {
			t.Fatalf("coordinate %d: %x → %x", i, math.Float64bits(p[i]), math.Float64bits(got[i]))
		}
	}
}
