package shard

// Deterministic fault injection for the serving tier, in the mold of
// internal/mapreduce's FaultPlan: a plan is shipped to every shard
// replica at spawn and evaluated at one fixed checkpoint — the arrival
// of a /shard/scan request — never from timers or randomness, so a
// failover scenario replays identically on every run. Because scans
// are pure and replicas identical, the router's retry reproduces the
// exact response the failed replica would have sent, which is what
// lets the failover tests pin byte-identity against a healthy cluster.

// FaultAction is what a triggered FaultEvent does to the shard replica.
type FaultAction int

// The actions. FaultKill exits the replica process immediately — the
// crash-stop failure the router's replica retry must absorb.
// FaultFreeze wedges the replica: the triggering request and every
// later request (including /healthz) block forever, so the router sees
// timeouts rather than refusals — the gray-failure case health probing
// exists for.
const (
	FaultKill FaultAction = iota
	FaultFreeze
)

// FaultEvent fires an action when a selected replica receives its N-th
// scan request.
type FaultEvent struct {
	// Shard selects the shard by index; -1 matches any shard.
	Shard int `json:"shard"`
	// Replica selects the replica by index; -1 matches any replica.
	Replica int `json:"replica"`
	// AfterScans is the 1-based count of /shard/scan requests at whose
	// arrival the event fires (before the scan executes, so the router
	// observes a failed request, not a torn response).
	AfterScans int `json:"after_scans"`
	// Action is what happens when the event fires.
	Action FaultAction `json:"action"`
}

// FaultPlan is a deterministic fault-injection script for a shard
// cluster; each event fires at most once per replica process. A nil
// plan injects nothing.
type FaultPlan struct {
	// Events are evaluated in order at every checkpoint; the first
	// unfired match fires.
	Events []FaultEvent `json:"events"`
}
