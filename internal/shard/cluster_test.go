package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/serve"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// saveIndex builds an index over objs and writes it to dir/name,
// returning the path and the in-memory index (the single-node
// reference).
func saveIndex(t *testing.T, objs []codec.Object, dir, name string) (string, *vindex.Index) {
	t.Helper()
	ix := buildIndex(t, objs)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ix
}

// twin is a sharded server and its single-node reference, serving the
// same index file through the identical serve.Server HTTP layer.
type twin struct {
	cluster *Cluster
	router  *Router
	sharded *httptest.Server
	single  *httptest.Server
}

func startTwin(t *testing.T, idxPath string, ccfg ClusterConfig, rcfg RouterConfig) *twin {
	t.Helper()
	ccfg.IndexPath = idxPath
	cluster, err := StartCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(cluster, rcfg)
	// Caching off on both sides so every request exercises the backend.
	shardedSrv := serve.NewBackend(router, idxPath, serve.Config{CacheSize: -1, Loader: router.Loader})
	ix, err := vindex.LoadFile(idxPath)
	if err != nil {
		cluster.Close()
		t.Fatal(err)
	}
	singleSrv := serve.New(ix, idxPath, serve.Config{CacheSize: -1})
	tw := &twin{
		cluster: cluster,
		router:  router,
		sharded: httptest.NewServer(shardedSrv.Handler()),
		single:  httptest.NewServer(singleSrv.Handler()),
	}
	t.Cleanup(func() {
		tw.sharded.Close()
		tw.single.Close()
		tw.router.Close()
		tw.cluster.Close()
	})
	return tw
}

func postBoth(t *testing.T, tw *twin, path, body string) (shardedCode, singleCode int, shardedBody, singleBody []byte) {
	t.Helper()
	shardedCode, shardedBody = postRaw(t, tw.sharded.URL+path, body)
	singleCode, singleBody = postRaw(t, tw.single.URL+path, body)
	return
}

func postRaw(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// checkIdentical asserts the sharded and single-node responses agree
// byte for byte (status included).
func checkIdentical(t *testing.T, tw *twin, path, body, label string) {
	t.Helper()
	sc, nc, sb, nb := postBoth(t, tw, path, body)
	if sc != nc {
		t.Fatalf("%s: status sharded=%d single=%d (%s vs %s)", label, sc, nc, sb, nb)
	}
	if !bytes.Equal(sb, nb) {
		t.Fatalf("%s: responses differ:\nsharded: %s\nsingle:  %s", label, sb, nb)
	}
}

func knnBody(t *testing.T, q vector.Point, k int) string {
	t.Helper()
	b, err := json.Marshal(serve.KNNRequest{Point: q, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func rangeBody(t *testing.T, q vector.Point, radius float64) string {
	t.Helper()
	b, err := json.Marshal(serve.RangeRequest{Point: q, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func batchBody(t *testing.T, qs []vector.Point, k int) string {
	t.Helper()
	req := serve.BatchRequest{}
	for _, q := range qs {
		req.Queries = append(req.Queries, serve.KNNRequest{Point: q, K: k})
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterByteIdentity is the golden test: every endpoint of the
// sharded server answers the exact bytes of the single-node server,
// across shard counts, including after a /reload.
func TestClusterByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	dir := t.TempDir()
	pathA, _ := saveIndex(t, dataset.Gaussian(900, 3, 6, 0.08, 100, 21), dir, "a.idx")
	pathB, _ := saveIndex(t, dataset.Gaussian(700, 3, 4, 0.1, 80, 22), dir, "b.idx")

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tw := startTwin(t, pathA, ClusterConfig{Shards: shards}, RouterConfig{})

			queries := func(tag string) {
				for trial := 0; trial < 8; trial++ {
					q := dataset.Gaussian(1, 3, 6, 0.2, 100, int64(trial)+40)[0].Point
					checkIdentical(t, tw, "/knn", knnBody(t, q, 1+trial%9), fmt.Sprintf("%s knn %d", tag, trial))
					checkIdentical(t, tw, "/range", rangeBody(t, q, 3+float64(trial)*2), fmt.Sprintf("%s range %d", tag, trial))
				}
				var qs []vector.Point
				for trial := 0; trial < 6; trial++ {
					qs = append(qs, dataset.Gaussian(1, 3, 6, 0.2, 100, int64(trial)+70)[0].Point)
				}
				checkIdentical(t, tw, "/knn/batch", batchBody(t, qs, 5), tag+" batch")
			}

			queries("genA")

			// Reload both sides onto index B; responses must track it and
			// stay identical.
			reload := fmt.Sprintf(`{"path":%q}`, pathB)
			checkIdentical(t, tw, "/reload", reload, "reload")
			queries("genB")

			if st := tw.router.Stats(); st.Gen != 2 {
				t.Fatalf("router generation after reload: got %d want 2", st.Gen)
			}
		})
	}
}

// TestClusterFailover is the deterministic failover matrix: kill or
// freeze replicas mid-query-stream and pin every response to the
// healthy single-node bytes.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	dir := t.TempDir()
	path, _ := saveIndex(t, dataset.Gaussian(800, 3, 5, 0.08, 100, 31), dir, "f.idx")

	cases := []struct {
		name string
		plan FaultPlan
		rcfg RouterConfig
	}{
		{
			name: "kill one replica per shard",
			plan: FaultPlan{Events: []FaultEvent{
				{Shard: 0, Replica: 0, AfterScans: 2, Action: FaultKill},
				{Shard: 1, Replica: 0, AfterScans: 3, Action: FaultKill},
			}},
			rcfg: RouterConfig{},
		},
		{
			name: "freeze preferred replica",
			plan: FaultPlan{Events: []FaultEvent{
				{Shard: -1, Replica: 0, AfterScans: 2, Action: FaultFreeze},
			}},
			// Short timeout so the frozen replica is detected quickly; the
			// prober demotes it between queries.
			rcfg: RouterConfig{Timeout: 750 * time.Millisecond, ProbeInterval: 50 * time.Millisecond},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := tc.plan
			tw := startTwin(t, path, ClusterConfig{Shards: 2, Replicas: 2, Faults: &plan}, tc.rcfg)

			for trial := 0; trial < 12; trial++ {
				q := dataset.Gaussian(1, 3, 5, 0.3, 100, int64(trial)+200)[0].Point
				checkIdentical(t, tw, "/knn", knnBody(t, q, 6), fmt.Sprintf("knn %d", trial))
			}
			st := tw.router.Stats()
			if st.Failovers == 0 {
				t.Fatal("fault plan fired no failovers — the faults never triggered")
			}
			t.Logf("failovers: %d, preferred: %v", st.Failovers, st.Preferred)
		})
	}
}

// TestConcurrentRoutingWithFailover drives the router from many
// goroutines while replicas die, under -race in CI: results must stay
// exactly equal to the single-node reference throughout replica
// promotion.
func TestConcurrentRoutingWithFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	dir := t.TempDir()
	path, ref := saveIndex(t, dataset.Gaussian(600, 3, 4, 0.1, 100, 41), dir, "c.idx")

	plan := &FaultPlan{Events: []FaultEvent{
		{Shard: -1, Replica: 0, AfterScans: 5, Action: FaultKill},
	}}
	cluster, err := StartCluster(ClusterConfig{IndexPath: path, Shards: 2, Replicas: 2, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	router := NewRouter(cluster, RouterConfig{ProbeInterval: 50 * time.Millisecond})
	defer router.Close()

	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := dataset.Gaussian(1, 3, 4, 0.3, 100, int64(w*100+i))[0].Point
				got, gotSt, err := router.KNNWithStats(context.Background(), q, 5)
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				want, wantSt := ref.KNNWithStats(q, 5)
				if gotSt != wantSt {
					errs <- fmt.Errorf("worker %d query %d: stats %+v != %+v", w, i, gotSt, wantSt)
					return
				}
				for x := range want {
					if got[x].ID != want[x].ID || math.Float64bits(got[x].Dist) != math.Float64bits(want[x].Dist) {
						errs <- fmt.Errorf("worker %d query %d: neighbor %d differs", w, i, x)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := router.Stats(); st.Failovers == 0 {
		t.Error("expected at least one failover from the kill plan")
	}
}
