package shard

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/obs"
)

// scrapeMetrics fetches url/metrics and parses it as Prometheus text
// exposition, returning families keyed by name.
func scrapeMetrics(t *testing.T, url string) map[string]obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s/metrics status %d: %s", url, resp.StatusCode, body)
	}
	fams, err := obs.ParseText(string(body))
	if err != nil {
		t.Fatalf("%s/metrics does not parse: %v\n%s", url, err, body)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// TestShardMetricsParse scrapes /metrics on both tiers of a sharded
// deployment after real traffic: the router's registry (shard_router_*
// joined with the fronting server's knnserve_* families) and a shard
// replica's own registry (shard_* scan counters).
func TestShardMetricsParse(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	dir := t.TempDir()
	path, _ := saveIndex(t, dataset.Gaussian(600, 3, 5, 0.1, 100, 31), dir, "m.idx")
	reg := obs.NewRegistry()
	tw := startTwin(t, path, ClusterConfig{Shards: 2}, RouterConfig{Metrics: reg})

	q := dataset.Gaussian(1, 3, 5, 0.2, 100, 44)[0].Point
	checkIdentical(t, tw, "/knn", knnBody(t, q, 5), "warmup knn")

	// The router and the fronting server share reg in production
	// (cmd/knnserve); here only the router writes to it, so scrape it
	// directly rather than through an HTTP tier.
	text, err := obs.ParseText(string(renderRegistry(t, reg)))
	if err != nil {
		t.Fatalf("router registry does not parse: %v", err)
	}
	routerFams := make(map[string]obs.Family, len(text))
	for _, f := range text {
		routerFams[f.Name] = f
	}
	queries, ok := routerFams["shard_router_queries_total"]
	if !ok {
		t.Fatal("shard_router_queries_total missing from router registry")
	}
	if queries.Samples[0].Value < 1 {
		t.Fatalf("shard_router_queries_total = %g, want >= 1", queries.Samples[0].Value)
	}
	if _, ok := routerFams["shard_router_scan_rpcs_total"]; !ok {
		t.Fatal("shard_router_scan_rpcs_total missing from router registry")
	}

	// Each replica serves its own /metrics via the embedded serve tier;
	// the shard_* families record delegated scan work.
	eps := tw.cluster.Endpoints()
	if len(eps) == 0 || len(eps[0]) == 0 {
		t.Fatal("cluster reports no endpoints")
	}
	var scans float64
	for _, shardEps := range eps {
		for _, ep := range shardEps {
			fams := scrapeMetrics(t, ep)
			sc, ok := fams["shard_scan_requests_total"]
			if !ok {
				t.Fatalf("shard_scan_requests_total missing from %s/metrics", ep)
			}
			scans += sc.Samples[0].Value
		}
	}
	if scans < 1 {
		t.Fatalf("summed shard_scan_requests_total = %g, want >= 1 after a routed query", scans)
	}
}

// renderRegistry renders a registry through its own HTTP handler, the
// same path GET /metrics uses.
func renderRegistry(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.Bytes()
}
