package shard

import (
	"os"
	"testing"
)

// TestMain lets the test binary serve as its own shard replica: cluster
// tests re-exec it, and RunShardIfSpawned turns the child into a shard
// server before any test runs.
func TestMain(m *testing.M) {
	RunShardIfSpawned()
	os.Exit(m.Run())
}
