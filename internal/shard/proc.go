package shard

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"knnjoin/internal/obs"
	"knnjoin/internal/serve"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// shardEnv carries a procConfig (JSON) into a spawned shard replica.
// Replicas are re-executed copies of the parent binary, the same
// re-exec idiom the MapReduce workers use; RunShardIfSpawned turns the
// re-exec into a shard server before the program's own main logic.
const shardEnv = "KNNJOIN_SHARD"

// faultKillExitCode distinguishes fault-plan kills from crashes in
// replica exit diagnostics (same value as the MapReduce workers').
const faultKillExitCode = 3

// procConfig is everything a shard replica needs, shipped via shardEnv.
type procConfig struct {
	// Index is the index file to load; Cells the owned Voronoi cells.
	Index string `json:"index"`
	Cells []int  `json:"cells"`
	// Shard and Replica locate this process in the cluster (for fault
	// matching and diagnostics).
	Shard   int `json:"shard"`
	Replica int `json:"replica"`
	// Gen is the initial index generation number.
	Gen int64 `json:"gen"`
	// AddrFile is where the replica publishes its bound address.
	AddrFile string `json:"addr_file"`
	// Kernel names the distance scan tier (must match the router's
	// single-node reference for byte-identity).
	Kernel string `json:"kernel"`
	// Faults is the deterministic fault-injection plan, if any.
	Faults *FaultPlan `json:"faults,omitempty"`
	// TraceDir, when set, makes the replica write scan spans as JSONL
	// there (joined to the router's trace via the request trace fields).
	TraceDir string `json:"trace_dir,omitempty"`
	// Pprof exposes net/http/pprof under /debug/pprof on the replica.
	Pprof bool `json:"pprof,omitempty"`
}

// RunShardIfSpawned checks whether this process was spawned as a shard
// replica and, if so, serves until killed — it never returns in that
// case. Call it first thing in main (and in TestMain for test binaries
// that start shard clusters); it is a no-op in ordinary processes.
func RunShardIfSpawned() {
	raw := os.Getenv(shardEnv)
	if raw == "" {
		return
	}
	var cfg procConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "shard: bad config: %v\n", err)
		os.Exit(1)
	}
	if err := runShard(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "shard %d replica %d: %v\n", cfg.Shard, cfg.Replica, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// shardProc is one shard replica: a serve.Server over the cell subset
// (so the shard's own /knn, /range, /knn/batch, /healthz work
// standalone, exact over the objects it holds) plus the /shard/scan,
// /shard/range and /shard/reload walk-delegation endpoints the router
// drives.
type shardProc struct {
	cfg    procConfig
	kernel vector.Kernel
	srv    *serve.Server
	tracer *obs.Tracer

	// /metrics families for the delegated-walk endpoints; the serve
	// families (shard-local /knn etc.) live on the same registry.
	mScans   *obs.Counter
	mRanges  *obs.Counter
	mReloads *obs.Counter

	// gens maps generation → subset index. The two most recent
	// generations are retained so router walks in flight across a
	// /shard/reload finish on the generation they started with.
	mu       sync.Mutex
	gens     map[int64]*vindex.Index
	genOrder []int64

	scans  atomic.Int64
	frozen atomic.Bool
	fireMu sync.Mutex
	fired  []bool
}

// loadSubset loads an index file and restricts it to the given cells.
func loadSubset(path string, cells []int) (*vindex.Index, error) {
	ix, err := vindex.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return ix.Subset(cells)
}

func runShard(cfg procConfig) error {
	kernel, err := vector.ParseKernel(cfg.Kernel)
	if err != nil {
		return err
	}
	sub, err := loadSubset(cfg.Index, cfg.Cells)
	if err != nil {
		return err
	}
	p := &shardProc{cfg: cfg, kernel: kernel, gens: map[int64]*vindex.Index{}}
	if cfg.Faults != nil {
		p.fired = make([]bool, len(cfg.Faults.Events))
	}
	if cfg.TraceDir != "" {
		tr, err := obs.NewTracer(cfg.TraceDir, fmt.Sprintf("shard-%d-%d", cfg.Shard, cfg.Replica))
		if err != nil {
			return err
		}
		defer tr.Close()
		p.tracer = tr
	}
	// serve.New applies the kernel tier to sub before publishing it, so
	// the same pointer is scan-ready for the gens map. The replica's
	// serve.Server owns the /metrics registry; the shard families below
	// join it so one scrape covers both roles.
	p.srv = serve.New(sub, cfg.Index, serve.Config{Kernel: kernel, Tracer: p.tracer})
	reg := p.srv.Metrics()
	p.mScans = reg.Counter("shard_scan_requests_total", "Delegated /shard/scan runs executed.")
	p.mRanges = reg.Counter("shard_range_requests_total", "Delegated /shard/range runs executed.")
	p.mReloads = reg.Counter("shard_reloads_total", "Index generations loaded via /shard/reload.")
	p.putGen(cfg.Gen, sub)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /shard/scan", p.handleScan)
	mux.HandleFunc("POST /shard/range", p.handleRange)
	mux.HandleFunc("POST /shard/reload", p.handleReload)
	if cfg.Pprof {
		obs.RegisterPprof(mux)
	}
	mux.Handle("/", p.srv.Handler())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if err := writeAddrFile(cfg.AddrFile, ln.Addr().String()); err != nil {
		return err
	}
	return http.Serve(ln, p.gate(mux))
}

// writeAddrFile publishes the bound address via tmp+rename, so a
// polling parent never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// gate wedges every handler once the replica is frozen — including
// /healthz, which is the point: a frozen replica looks dead only to
// callers that enforce timeouts.
func (p *shardProc) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p.frozen.Load() {
			select {}
		}
		h.ServeHTTP(w, r)
	})
}

func (p *shardProc) putGen(gen int64, ix *vindex.Index) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gens[gen] = ix
	p.genOrder = append(p.genOrder, gen)
	for len(p.genOrder) > 2 {
		delete(p.gens, p.genOrder[0])
		p.genOrder = p.genOrder[1:]
	}
}

func (p *shardProc) gen(gen int64) *vindex.Index {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gens[gen]
}

func writeShardErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(serve.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeShardJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// maybeFault evaluates the fault plan at the scan checkpoint; n is the
// 1-based scan arrival count. The first unfired matching event fires.
func (p *shardProc) maybeFault(n int64) {
	plan := p.cfg.Faults
	if plan == nil {
		return
	}
	p.fireMu.Lock()
	var act *FaultEvent
	for i := range plan.Events {
		e := &plan.Events[i]
		if p.fired[i] {
			continue
		}
		if e.Shard != -1 && e.Shard != p.cfg.Shard {
			continue
		}
		if e.Replica != -1 && e.Replica != p.cfg.Replica {
			continue
		}
		if int64(e.AfterScans) != n {
			continue
		}
		p.fired[i] = true
		act = e
		break
	}
	p.fireMu.Unlock()
	if act == nil {
		return
	}
	switch act.Action {
	case FaultKill:
		os.Exit(faultKillExitCode)
	case FaultFreeze:
		p.frozen.Store(true)
		select {} // wedge this request too; gate catches the rest
	}
}

// scanSpan opens the replica-side span for one delegated run, joined
// to the router's trace via the request's trace fields. Replicas are
// killed, not shut down, so the span is flushed on end — otherwise it
// would die in the tracer's buffer.
func (p *shardProc) scanSpan(name, traceID, parent string) (*obs.Span, func()) {
	span := p.tracer.StartSpan(name, obs.SpanContext{TraceID: traceID, SpanID: parent})
	span.SetAttr("shard", fmt.Sprint(p.cfg.Shard))
	span.SetAttr("replica", fmt.Sprint(p.cfg.Replica))
	return span, func() {
		span.End()
		p.tracer.Flush()
	}
}

func (p *shardProc) handleScan(w http.ResponseWriter, r *http.Request) {
	p.maybeFault(p.scans.Add(1))
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeShardErr(w, http.StatusBadRequest, "bad scan request: %v", err)
		return
	}
	span, done := p.scanSpan("shard-scan", req.TraceID, req.SpanParent)
	defer done()
	span.SetAttr("parts", fmt.Sprint(len(req.Parts)))
	ix := p.gen(req.Gen)
	if ix == nil {
		span.SetAttr("outcome", "stale-gen")
		writeShardErr(w, http.StatusConflict, "unknown index generation %d", req.Gen)
		return
	}
	resp, err := execScan(ix, &req)
	if err != nil {
		span.SetAttr("outcome", "error")
		writeShardErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	span.SetAttr("outcome", "ok")
	span.SetAttr("dist_computations", fmt.Sprint(resp.DistComputations))
	p.mScans.Inc()
	writeShardJSON(w, resp)
}

func (p *shardProc) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeShardErr(w, http.StatusBadRequest, "bad range request: %v", err)
		return
	}
	span, done := p.scanSpan("shard-range", req.TraceID, req.SpanParent)
	defer done()
	span.SetAttr("parts", fmt.Sprint(len(req.Parts)))
	ix := p.gen(req.Gen)
	if ix == nil {
		span.SetAttr("outcome", "stale-gen")
		writeShardErr(w, http.StatusConflict, "unknown index generation %d", req.Gen)
		return
	}
	resp, err := execRangeScan(ix, &req)
	if err != nil {
		span.SetAttr("outcome", "error")
		writeShardErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	span.SetAttr("outcome", "ok")
	p.mRanges.Inc()
	writeShardJSON(w, resp)
}

func (p *shardProc) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeShardErr(w, http.StatusBadRequest, "bad reload request: %v", err)
		return
	}
	sub, err := loadSubset(req.Index, req.Cells)
	if err != nil {
		writeShardErr(w, http.StatusUnprocessableEntity, "loading %s: %v", req.Index, err)
		return
	}
	// Swap applies the kernel tier before the snapshot publishes; the
	// gens map gets the same prepared pointer.
	p.srv.Swap(sub, req.Index)
	p.putGen(req.Gen, sub)
	p.mReloads.Inc()
	writeShardJSON(w, serve.HealthResponse{Status: "ok", Objects: sub.Len(), Partitions: sub.NumPartitions()})
}
