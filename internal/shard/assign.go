package shard

import (
	"math"
	"sort"

	"knnjoin/internal/vindex"
)

// AssignCells groups an index's Voronoi cells into n shards,
// deterministically, optimizing for the router's access pattern: the
// walk visits cells in ascending query–pivot distance, so cells that
// are CLOSE TO EACH OTHER tend to be consecutive in visit order, and
// co-locating them on one shard turns many small scan RPCs into few
// large ones (and keeps shards-contacted-per-query below the shard
// count on clustered data). It returns owner (cell → shard) and the
// per-shard cell lists (ascending).
//
// The grouping is a capacity-bounded greedy k-center: shard centers are
// chosen by farthest-first traversal over the pivots (maximally spread,
// deterministic ties by index), then cells are placed — largest object
// count first — on the nearest center with remaining object capacity.
// The capacity (20% above a perfectly even split) keeps a hot region
// from landing entirely on one shard.
func AssignCells(ix *vindex.Index, n int) (owner []int, cells [][]int) {
	pivots := ix.Pivots()
	m := ix.Metric()
	numCells := len(pivots)
	if n < 1 {
		n = 1
	}
	// More shards than cells leaves the surplus shards empty (they are
	// spawned but never contacted).
	want := n
	if n > numCells {
		n = numCells
	}

	// Farthest-first centers: start at cell 0, then repeatedly take the
	// pivot farthest from every chosen center (ties by lower index).
	centers := make([]int, 0, n)
	minDist := make([]float64, numCells)
	for j := range minDist {
		minDist[j] = math.Inf(1)
	}
	next := 0
	for len(centers) < n {
		centers = append(centers, next)
		best, bestD := -1, math.Inf(-1)
		for j := 0; j < numCells; j++ {
			if d := m.Dist(pivots[j], pivots[next]); d < minDist[j] {
				minDist[j] = d
			}
			if minDist[j] > bestD {
				best, bestD = j, minDist[j]
			}
		}
		next = best
	}

	// Place cells largest-first on the nearest center with capacity.
	total := 0
	order := make([]int, numCells)
	for j := range order {
		order[j] = j
		total += ix.PartitionLen(j)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := ix.PartitionLen(order[a]), ix.PartitionLen(order[b])
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	capacity := (total*6/5)/n + 1
	load := make([]int, n)
	owner = make([]int, numCells)
	for _, j := range order {
		cnt := ix.PartitionLen(j)
		best, bestD := -1, math.Inf(1)
		fallback, fallbackLoad := 0, math.MaxInt
		for s, c := range centers {
			d := m.Dist(pivots[j], pivots[c])
			if load[s]+cnt <= capacity && d < bestD {
				best, bestD = s, d
			}
			if load[s] < fallbackLoad {
				fallback, fallbackLoad = s, load[s]
			}
		}
		if best < 0 {
			best = fallback // every shard over capacity: least-loaded wins
		}
		owner[j] = best
		load[best] += cnt
	}

	cells = make([][]int, want)
	for j, s := range owner {
		cells[s] = append(cells[s], j)
	}
	return owner, cells
}
