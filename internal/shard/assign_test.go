package shard

import (
	"reflect"
	"sort"
	"testing"

	"knnjoin/internal/dataset"
)

func TestAssignCellsCoverageAndDeterminism(t *testing.T) {
	ix := buildIndex(t, dataset.Gaussian(1000, 3, 6, 0.1, 100, 3))
	numCells := ix.NumPartitions()

	for _, n := range []int{1, 2, 3, 5} {
		owner, cells := AssignCells(ix, n)
		if len(owner) != numCells {
			t.Fatalf("n=%d: owner covers %d cells, index has %d", n, len(owner), numCells)
		}
		if len(cells) != n {
			t.Fatalf("n=%d: got %d shard lists", n, len(cells))
		}
		seen := make([]bool, numCells)
		for s, list := range cells {
			if !sort.IntsAreSorted(list) {
				t.Fatalf("n=%d: shard %d cell list not ascending: %v", n, s, list)
			}
			for _, j := range list {
				if owner[j] != s {
					t.Fatalf("n=%d: cell %d in shard %d's list but owned by %d", n, j, s, owner[j])
				}
				if seen[j] {
					t.Fatalf("n=%d: cell %d assigned twice", n, j)
				}
				seen[j] = true
			}
		}
		for j, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: cell %d unassigned", n, j)
			}
		}

		owner2, cells2 := AssignCells(ix, n)
		if !reflect.DeepEqual(owner, owner2) || !reflect.DeepEqual(cells, cells2) {
			t.Fatalf("n=%d: AssignCells is not deterministic", n)
		}
	}
}

func TestAssignCellsBalance(t *testing.T) {
	ix := buildIndex(t, dataset.Gaussian(2000, 3, 4, 0.05, 100, 9))
	const n = 4
	_, cells := AssignCells(ix, n)
	total := ix.Len()
	capacity := (total*6/5)/n + 1

	// Find the largest single cell: the capacity bound can only be
	// exceeded by the least-loaded fallback, which adds at most one
	// oversized cell past the limit.
	maxCell := 0
	for j := 0; j < ix.NumPartitions(); j++ {
		if c := ix.PartitionLen(j); c > maxCell {
			maxCell = c
		}
	}
	for s, list := range cells {
		load := 0
		for _, j := range list {
			load += ix.PartitionLen(j)
		}
		if load > capacity+maxCell {
			t.Fatalf("shard %d holds %d objects, capacity %d (+%d slack)", s, load, capacity, maxCell)
		}
		if load == 0 {
			t.Fatalf("shard %d is empty on clustered data", s)
		}
	}
}

func TestAssignCellsMoreShardsThanCells(t *testing.T) {
	ix := buildIndex(t, dataset.Uniform(9, 2, 10, 1)) // few objects → few cells
	n := ix.NumPartitions() + 3
	owner, cells := AssignCells(ix, n)
	if len(cells) != n {
		t.Fatalf("asked for %d shards, got %d lists", n, len(cells))
	}
	for j, s := range owner {
		if s < 0 || s >= n {
			t.Fatalf("cell %d owned by out-of-range shard %d", j, s)
		}
	}
	nonEmpty := 0
	for _, list := range cells {
		if len(list) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no shard owns any cell")
	}
}
