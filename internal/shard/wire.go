// Package shard is the sharded serving tier: the single-node vindex
// query split across N shard processes by Voronoi cell, behind a router
// that replays the EXACT single-node partition walk and delegates only
// the block scans.
//
// Byte-identity with single-node knnserve is the design constraint, and
// it is stricter than returning the same neighbors: responses embed the
// per-query Stats (distance computations, partitions scanned/pruned),
// which depend on the walk's evolving bound θ. A naive scatter-gather —
// query every relevant shard with the starting bound, merge top-k heaps
// — produces correct neighbors but different Stats, because θ tightens
// as partitions are scanned in pivot-distance order and later windows
// shrink. So the router holds a metadata-only view of the index
// (vindex.MetaOnly: pivots, pivot-distance matrix, summary — no
// objects) and walks partitions in the exact single-node visit order,
// delegating each maximal run of consecutive same-shard partitions as
// one scan RPC that carries the walk state (θ, the candidate heap in
// verbatim internal order, the query's pivot gaps as float bits). The
// shard executes vindex.KNNStep — the same code the single-node path
// runs — and returns the updated state. Floats cross the wire as
// math.Float64bits, so no decimal round-trip can perturb a comparison.
//
// Each shard runs R identical replica processes; the router retries a
// scan on the next replica when one times out or dies (pure scans make
// retries safe), and a background prober demotes unhealthy replicas.
package shard

import (
	"fmt"
	"math"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
	"knnjoin/internal/vindex"
)

// WireCand is one candidate of the walk's heap in transit: the distance
// travels as float bits so the restored heap is bit-identical.
type WireCand struct {
	// ID is the candidate object's identifier.
	ID int64 `json:"id"`
	// Dist is math.Float64bits of the retained distance (squared space
	// under L2 — whatever the kernels produced).
	Dist uint64 `json:"dist"`
}

// ScanPart is one partition of a scan run, with the query's
// precomputed pivot gap so the shard never recomputes a distance the
// router already charged to the query's accounting.
type ScanPart struct {
	// J is the partition (Voronoi cell) index.
	J int `json:"j"`
	// Gap is math.Float64bits of |q, p_J|.
	Gap uint64 `json:"gap"`
}

// ScanRequest is the body of POST /shard/scan: "execute these
// partitions of the walk, in order, starting from this exact state".
type ScanRequest struct {
	// Gen selects the shard's index generation (reload safety).
	Gen int64 `json:"gen"`
	// K is the query's neighbor count (the heap bound).
	K int `json:"k"`
	// QPart is the query's own cell; QDist is math.Float64bits of the
	// distance to its pivot. Both feed the Corollary-1 checks.
	QPart int `json:"q_part"`
	// QDist is math.Float64bits of |q, p_QPart|.
	QDist uint64 `json:"q_dist"`
	// Q is the query point, one math.Float64bits per coordinate.
	Q []uint64 `json:"q"`
	// Theta is math.Float64bits of the walk's current bound θ.
	Theta uint64 `json:"theta"`
	// Heap is the candidate heap in verbatim internal order.
	Heap []WireCand `json:"heap"`
	// Parts are the partitions to execute, in visit order.
	Parts []ScanPart `json:"parts"`

	// TraceID and SpanParent propagate the router's request span so the
	// shard's scan span joins the same trace. Omitted when tracing is
	// disabled; they ride only this request-side struct, never the
	// response, so enabling tracing cannot perturb any output byte.
	TraceID    string `json:"trace_id,omitempty"`
	SpanParent string `json:"span_parent,omitempty"`
}

// ScanResponse returns the walk state after the run plus the Stats
// delta the run accrued.
type ScanResponse struct {
	// Theta is math.Float64bits of the possibly-tightened θ.
	Theta uint64 `json:"theta"`
	// Heap is the updated heap in verbatim internal order.
	Heap []WireCand `json:"heap"`
	// DistComputations, PartitionsScanned and PartitionsPruned are the
	// run's additions to the query's Stats.
	DistComputations int64 `json:"dist_computations"`
	// PartitionsScanned counts cells of the run whose window was scanned.
	PartitionsScanned int `json:"partitions_scanned"`
	// PartitionsPruned counts cells of the run pruned wholesale.
	PartitionsPruned int `json:"partitions_pruned"`
}

// RangePart is one pre-windowed partition of a range scan.
type RangePart struct {
	// J is the partition index.
	J int `json:"j"`
	// Lo and Hi are math.Float64bits of the Theorem-2 pivot-distance
	// window the router computed.
	Lo uint64 `json:"lo"`
	// Hi is the window's upper bound.
	Hi uint64 `json:"hi"`
}

// RangeScanRequest is the body of POST /shard/range: scan these
// windows, return the objects within the radius.
type RangeScanRequest struct {
	// Gen selects the shard's index generation.
	Gen int64 `json:"gen"`
	// Q is the query point as float bits; Radius the search radius.
	Q []uint64 `json:"q"`
	// Radius is math.Float64bits of the search radius.
	Radius uint64 `json:"radius"`
	// Parts are the windows to scan.
	Parts []RangePart `json:"parts"`

	// TraceID and SpanParent mirror ScanRequest's trace propagation.
	TraceID    string `json:"trace_id,omitempty"`
	SpanParent string `json:"span_parent,omitempty"`
}

// WireObject is one range match in transit, coordinates as float bits.
type WireObject struct {
	// ID is the matched object's identifier.
	ID int64 `json:"id"`
	// Point is the object's coordinates, one math.Float64bits each.
	Point []uint64 `json:"point"`
}

// RangeScanResponse returns a range scan's matches and its row charge.
type RangeScanResponse struct {
	// Rows is the number of rows examined (the query's
	// distance-computation charge for this shard).
	Rows int64 `json:"rows"`
	// Matches are the objects within the radius, in scan order.
	Matches []WireObject `json:"matches"`
}

// ReloadShardRequest is the body of POST /shard/reload: load a new
// index generation alongside the current one (the shard retains the
// previous generation so in-flight router walks finish consistently).
type ReloadShardRequest struct {
	// Gen is the new generation number.
	Gen int64 `json:"gen"`
	// Index is the index file to load; Cells the shard's new cell set.
	Index string `json:"index"`
	// Cells is the set of Voronoi cells this shard now owns.
	Cells []int `json:"cells"`
}

// pointBits converts a point to its wire form, one Float64bits per
// coordinate.
func pointBits(p vector.Point) []uint64 {
	out := make([]uint64, len(p))
	for i, v := range p {
		out[i] = math.Float64bits(v)
	}
	return out
}

// bitsPoint is the inverse of pointBits.
func bitsPoint(bits []uint64) vector.Point {
	out := make(vector.Point, len(bits))
	for i, b := range bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// heapWire snapshots a heap's internal array for the wire.
func heapWire(h *nnheap.KHeap) []WireCand {
	items := h.Items()
	out := make([]WireCand, len(items))
	for i, c := range items {
		out[i] = WireCand{ID: c.ID, Dist: math.Float64bits(c.Dist)}
	}
	return out
}

// wireHeap restores a heap from its wire form, verbatim.
func wireHeap(k int, wc []WireCand) (*nnheap.KHeap, error) {
	items := make([]nnheap.Candidate, len(wc))
	for i, c := range wc {
		items[i] = nnheap.Candidate{ID: c.ID, Dist: math.Float64frombits(c.Dist)}
	}
	return nnheap.RestoreKHeap(k, items)
}

// execScan runs one scan request against an index that holds the
// requested partitions — the shard process's handler core, also used
// directly by tests that check the router walk against the full index
// without spawning processes.
func execScan(ix *vindex.Index, req *ScanRequest) (*ScanResponse, error) {
	if req.K <= 0 {
		return nil, fmt.Errorf("scan: k must be positive, got %d", req.K)
	}
	numPart := ix.NumPartitions()
	if req.QPart < 0 || req.QPart >= numPart {
		return nil, fmt.Errorf("scan: query partition %d out of range [0,%d)", req.QPart, numPart)
	}
	q := bitsPoint(req.Q)
	heap, err := wireHeap(req.K, req.Heap)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	qDist := math.Float64frombits(req.QDist)
	theta := math.Float64frombits(req.Theta)
	var st vindex.Stats
	var sc vector.Scratch
	for _, p := range req.Parts {
		if p.J < 0 || p.J >= numPart {
			return nil, fmt.Errorf("scan: partition %d out of range [0,%d)", p.J, numPart)
		}
		theta = ix.KNNStep(p.J, req.QPart, q, qDist, math.Float64frombits(p.Gap), theta, heap, &sc, &st)
	}
	return &ScanResponse{
		Theta:             math.Float64bits(theta),
		Heap:              heapWire(heap),
		DistComputations:  st.DistComputations,
		PartitionsScanned: st.PartitionsScanned,
		PartitionsPruned:  st.PartitionsPruned,
	}, nil
}

// execRangeScan runs one range-scan request — the /shard/range handler
// core, shared with the in-process tests like execScan.
func execRangeScan(ix *vindex.Index, req *RangeScanRequest) (*RangeScanResponse, error) {
	q := bitsPoint(req.Q)
	radius := math.Float64frombits(req.Radius)
	numPart := ix.NumPartitions()
	resp := &RangeScanResponse{}
	for _, p := range req.Parts {
		if p.J < 0 || p.J >= numPart {
			return nil, fmt.Errorf("range scan: partition %d out of range [0,%d)", p.J, numPart)
		}
		objs, rows := ix.RangeScan(p.J, q, math.Float64frombits(p.Lo), math.Float64frombits(p.Hi), radius)
		resp.Rows += int64(rows)
		for _, o := range objs {
			resp.Matches = append(resp.Matches, WireObject{ID: o.ID, Point: pointBits(o.Point)})
		}
	}
	return resp, nil
}

// wireObjects converts range matches back to objects.
func wireObjects(ws []WireObject) []codec.Object {
	out := make([]codec.Object, len(ws))
	for i, w := range ws {
		out[i] = codec.Object{ID: w.ID, Point: bitsPoint(w.Point)}
	}
	return out
}
