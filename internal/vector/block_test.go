package vector

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"knnjoin/internal/nnheap"
)

// randBlock builds a block of n random dim-d points plus the same data
// as standalone Points, with PivotDist ascending (the shuffle order) so
// PivotDistWindow is exercisable.
func randBlock(rng *rand.Rand, n, dim int) (*Block, []Point) {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		pts[i] = p
	}
	pds := make([]float64, n)
	for i := range pds {
		pds[i] = rng.Float64() * 100
	}
	sort.Float64s(pds)
	b := &Block{}
	for i, p := range pts {
		if err := b.Append(int64(i*7+1), pds[i], p); err != nil {
			panic(err)
		}
	}
	return b, pts
}

// The property at the heart of the block pipeline: every kernel agrees
// EXACTLY (bit for bit, not approximately) with the scalar
// SqDist/Metric.Dist path, across random dims and metrics, including the
// empty block and k > n edges.
func TestBlockKernelsMatchScalarExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metrics := []Metric{L2, L1, LInf}
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16, 32, 33} {
		for _, n := range []int{0, 1, 2, 17, 200} {
			b, pts := randBlock(rng, n, dim)
			if b.Len() != n {
				t.Fatalf("dim=%d n=%d: Len=%d", dim, n, b.Len())
			}
			q := make(Point, dim)
			for d := range q {
				q[d] = rng.NormFloat64() * 10
			}

			// SqDistTo / DistTo row for row.
			for i := 0; i < n; i++ {
				if got, want := b.SqDistTo(i, q), SqDist(pts[i], q); got != want {
					t.Fatalf("dim=%d n=%d row=%d: SqDistTo=%v, SqDist=%v", dim, n, i, got, want)
				}
				if !b.At(i).Equal(pts[i]) {
					t.Fatalf("dim=%d n=%d row=%d: At() mismatch", dim, n, i)
				}
				for _, m := range metrics {
					if got, want := b.DistTo(i, q, m), m.Dist(pts[i], q); got != want {
						t.Fatalf("dim=%d n=%d row=%d %v: DistTo=%v, Dist=%v", dim, n, i, m, got, want)
					}
				}
			}

			// NearestK vs the brute-force scalar heap, including k > n.
			for _, k := range []int{1, 3, n + 1, 2*n + 5} {
				for _, m := range metrics {
					h := nnheap.NewKHeap(k)
					scanned := b.NearestK(q, m, h)
					if scanned != n {
						t.Fatalf("scanned %d rows, want %d", scanned, n)
					}
					ref := nnheap.NewKHeap(k)
					for i, p := range pts {
						ref.Push(nnheap.Candidate{ID: int64(i*7 + 1), Dist: m.Dist(p, q)})
					}
					got, want := h.Sorted(), ref.Sorted()
					if len(got) != len(want) {
						t.Fatalf("dim=%d n=%d k=%d %v: %d candidates, want %d", dim, n, k, m, len(got), len(want))
					}
					for i := range got {
						d := got[i].Dist
						if m == L2 {
							d = math.Sqrt(d) // kernels keep L2 squared until emit
						}
						if d != want[i].Dist || got[i].ID != want[i].ID {
							t.Fatalf("dim=%d n=%d k=%d %v cand %d: got (%d,%v), want (%d,%v)",
								dim, n, k, m, i, got[i].ID, d, want[i].ID, want[i].Dist)
						}
					}
				}
			}
		}
	}
}

// The pivot-gap prefilter must select exactly the rows a linear filter
// over PivotDist selects.
func TestPivotDistWindowMatchesLinearFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b, _ := randBlock(rng, 300, 3)
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(b.Len() + 1)
		hi := lo + rng.Intn(b.Len()+1-lo)
		dLo := rng.Float64()*120 - 10
		dHi := dLo + rng.Float64()*40
		from, to := b.PivotDistWindow(lo, hi, dLo, dHi)
		for i := lo; i < hi; i++ {
			in := b.PivotDist[i] >= dLo && b.PivotDist[i] <= dHi
			if in != (i >= from && i < to) {
				t.Fatalf("trial %d: row %d (pd=%v) window [%d,%d) bounds [%v,%v]",
					trial, i, b.PivotDist[i], from, to, dLo, dHi)
			}
		}
	}
	// Empty block, empty window.
	empty := &Block{}
	if from, to := empty.PivotDistWindow(0, 0, 0, 1); from != 0 || to != 0 {
		t.Fatalf("empty block window = [%d,%d)", from, to)
	}
}

func TestBlockRangeToMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range []Metric{L2, L1, LInf} {
		b, pts := randBlock(rng, 120, 4)
		q := Point{1, -2, 3, 0.5}
		theta := 12.0
		var scanned int64
		got := b.RangeTo(q, 0, b.Len(), m, theta, nil, &scanned)
		if scanned != int64(b.Len()) {
			t.Fatalf("scanned = %d, want %d", scanned, b.Len())
		}
		var want []nnheap.Candidate
		for i, p := range pts {
			if d := m.Dist(p, q); d <= theta {
				want = append(want, nnheap.Candidate{ID: b.IDs[i], Dist: d})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d hits, want %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v hit %d: got %+v, want %+v", m, i, got[i], want[i])
			}
		}
	}
}

func TestBlockAppend(t *testing.T) {
	b := &Block{}
	if err := b.Append(1, 0.5, Point{1, 2}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if b.Dim != 2 || b.Len() != 1 {
		t.Fatalf("dim=%d len=%d", b.Dim, b.Len())
	}
	if err := b.Append(2, 0.5, Point{1, 2, 3}); err == nil {
		t.Fatal("mixed-dim append did not report an error")
	}
	if b.Len() != 1 {
		t.Fatalf("failed append mutated the block: len=%d", b.Len())
	}
}

// Appending after Prepare must drop the filter mirrors (they would be
// stale) and fall back to the exact kernel.
func TestBlockAppendDropsKernelMirrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, _ := randBlock(rng, 64, 8)
	b.Prepare(KernelQuantized)
	if b.ActiveKernel() != KernelQuantized {
		t.Fatalf("ActiveKernel = %v, want quantized", b.ActiveKernel())
	}
	if err := b.Append(999, 1000, make(Point, 8)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if b.ActiveKernel() != KernelBlock {
		t.Fatalf("ActiveKernel after append = %v, want block", b.ActiveKernel())
	}
	if b.codes != nil || b.coords32 != nil {
		t.Fatal("append left stale filter mirrors attached")
	}
}

func TestBlockKernelsPanicOnDimMismatch(t *testing.T) {
	b := &Block{}
	if err := b.Append(1, 0, Point{1, 2}); err != nil {
		t.Fatalf("append: %v", err)
	}
	for name, fn := range map[string]func(){
		"SqDistTo": func() { b.SqDistTo(0, Point{1}) },
		"DistTo":   func() { b.DistTo(0, Point{1}, L2) },
		"NearestK": func() { b.NearestK(Point{1, 2, 3}, L2, nnheap.NewKHeap(1)) },
		"RangeTo":  func() { b.RangeTo(Point{1}, 0, 1, L2, 1, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on dimension mismatch", name)
				}
			}()
			fn()
		}()
	}
}
