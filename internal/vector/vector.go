// Package vector provides the n-dimensional point type and the distance
// metrics used throughout the kNN-join pipeline.
//
// The paper (§2.1) defines objects in an n-dimensional metric space with
// Euclidean distance (L2) as the default measure and notes that the methods
// apply unchanged to the Manhattan (L1) and maximum (L∞) metrics; all three
// are provided here.
package vector

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is an object in an n-dimensional space. The zero-length Point is
// valid and has distance 0 to itself.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Project returns the first d coordinates of p as a new point. It panics if
// d exceeds the dimensionality of p.
func (p Point) Project(d int) Point {
	if d > len(p) {
		panic(fmt.Sprintf("vector: cannot project %d-dim point to %d dims", len(p), d))
	}
	return p[:d].Clone()
}

// String formats the point as comma-separated coordinates, e.g. "1,2.5,3".
func (p Point) String() string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}

// Parse parses a comma-separated coordinate list into a Point.
func Parse(s string) (Point, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("vector: empty point string")
	}
	fields := strings.Split(s, ",")
	p := make(Point, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("vector: bad coordinate %q: %w", f, err)
		}
		p[i] = v
	}
	return p, nil
}

// Metric identifies a distance measure over Points.
type Metric int

const (
	// L2 is the Euclidean metric, the paper's default.
	L2 Metric = iota
	// L1 is the Manhattan metric.
	L1
	// LInf is the maximum (Chebyshev) metric.
	LInf
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case L1:
		return "L1"
	case LInf:
		return "LInf"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ParseMetric converts a metric name ("l1", "L2", "linf", "max", ...) into a
// Metric value.
func ParseMetric(s string) (Metric, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "l2", "euclidean", "":
		return L2, nil
	case "l1", "manhattan":
		return L1, nil
	case "linf", "max", "chebyshev", "maximum":
		return LInf, nil
	}
	return L2, fmt.Errorf("vector: unknown metric %q", s)
}

// Dist computes the distance between p and q under the metric. The points
// must have the same dimensionality; Dist panics otherwise, since mixing
// dimensionalities is always a programming error in this pipeline.
func (m Metric) Dist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(p), len(q)))
	}
	switch m {
	case L2:
		return math.Sqrt(sqDistL2(p, q)) //lint:allow sqrtfree: Metric.Dist is the public exact API in true units; kernels use sqDistL2
	case L1:
		var s float64
		for i := range p {
			s += math.Abs(p[i] - q[i])
		}
		return s
	case LInf:
		var mx float64
		for i := range p {
			if d := math.Abs(p[i] - q[i]); d > mx {
				mx = d
			}
		}
		return mx
	}
	panic("vector: unknown metric")
}

// SqDist returns the squared Euclidean distance between p and q. It is only
// meaningful for the L2 metric and exists so hot loops can defer the sqrt.
func SqDist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(p), len(q)))
	}
	return sqDistL2(p, q)
}

// sqDistL2 is the one squared-L2 kernel of the repository: every caller
// — Metric.Dist, SqDist, and the Block kernels over flat coordinate rows
// — funnels through it, so scalar and columnar paths agree bit for bit.
// Four accumulators break the loop-carried dependency on the running
// sum, letting the FPU pipeline the adds (~3–4× on wide rows); the
// summation order is fixed, deterministic, and shared by construction.
// The chunk-advance shape (slice off four elements per step instead of
// indexing i..i+3) is what lets the prove pass eliminate every element
// bounds check on this toolchain; the per-chunk `q = q[:len(p)]`
// re-teaches it len(q) == len(p), which it forgets across the loop phi.
// scripts/check_bce.sh gates the elimination.
func sqDistL2(p, q []float64) float64 {
	q = q[:len(p)] // bounds-check elimination; callers guarantee equal length
	var s0, s1, s2, s3 float64
	for len(p) >= 4 {
		q = q[:len(p)]
		d0 := p[0] - q[0]
		d1 := p[1] - q[1]
		d2 := p[2] - q[2]
		d3 := p[3] - q[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		p, q = p[4:], q[4:]
	}
	q = q[:len(p)]
	for i, v := range p {
		d := v - q[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Dist is shorthand for L2.Dist, the paper's default measure.
func Dist(p, q Point) float64 { return L2.Dist(p, q) }

// Mean returns the centroid of the given points. It panics on an empty
// input because a centroid of nothing is undefined.
func Mean(points []Point) Point {
	if len(points) == 0 {
		panic("vector: Mean of empty point set")
	}
	c := make(Point, len(points[0]))
	for _, p := range points {
		for i, v := range p {
			c[i] += v
		}
	}
	inv := 1 / float64(len(points))
	for i := range c {
		c[i] *= inv
	}
	return c
}
