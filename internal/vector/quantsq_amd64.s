//go:build amd64

#include "textflag.h"

// func quantSqRowsAsm(codes, q *uint8, stride, rows int, out *int64)
//
// For each of rows consecutive code rows of width stride (a positive
// multiple of 8), writes out[r] = Σ_j (codes[r·stride+j] − q[j])².
//
// Per 16 codes: unpack bytes to words against zero, PSUBW the query
// words, then PMADDWL squares the int16 differences (|d| ≤ 255, so
// d² ≤ 65025 and each pair sum fits int32) and adds adjacent pairs
// into 4 int32 lanes. Lanes accumulate ≤ 2·255²·stride/16 per loop
// trip; with stride capped at quantMaxDim (16384) the lane totals and
// the final 4-lane horizontal sum stay below 2³¹, so every add is
// exact. SSE2 only — no CPU feature detection required on amd64.
TEXT ·quantSqRowsAsm(SB), NOSPLIT, $0-40
	MOVQ codes+0(FP), SI
	MOVQ q+8(FP), DX
	MOVQ stride+16(FP), R8
	MOVQ rows+24(FP), R9
	MOVQ out+32(FP), DI
	PXOR X7, X7              // zero, for byte→word unpacks
	TESTQ R9, R9
	JLE  done

rowloop:
	MOVQ DX, BX              // query cursor
	MOVQ R8, CX              // coords remaining in this row
	PXOR X6, X6              // row accumulator: 4 × int32

chunk16:
	CMPQ CX, $16
	JL   chunk8
	MOVOU (SI), X0           // 16 row codes
	MOVOU (BX), X1           // 16 query codes
	MOVOU X0, X2
	MOVOU X1, X3
	PUNPCKLBW X7, X0         // low 8 codes → words
	PUNPCKLBW X7, X1
	PUNPCKHBW X7, X2         // high 8 codes → words
	PUNPCKHBW X7, X3
	PSUBW X1, X0             // int16 diffs
	PSUBW X3, X2
	PMADDWL X0, X0           // d² pairs summed → 4 × int32
	PMADDWL X2, X2
	PADDL X0, X6
	PADDL X2, X6
	ADDQ $16, SI
	ADDQ $16, BX
	SUBQ $16, CX
	JMP  chunk16

chunk8:
	CMPQ CX, $8
	JL   rowdone
	MOVQ (SI), X0            // 8 row codes
	MOVQ (BX), X1            // 8 query codes
	PUNPCKLBW X7, X0
	PUNPCKLBW X7, X1
	PSUBW X1, X0
	PMADDWL X0, X0
	PADDL X0, X6
	ADDQ $8, SI
	ADDQ $8, BX
	SUBQ $8, CX
	JMP  chunk8

rowdone:
	// Horizontal sum of the 4 int32 lanes (total < 2³¹, see above).
	PSHUFL $0xEE, X6, X0     // lanes 2,3
	PADDL X0, X6
	PSHUFL $0x55, X6, X0     // lane 1
	PADDL X0, X6
	MOVQ X6, AX              // lane 0 in low 32 bits
	MOVL AX, AX              // zero-extend: lane 1 residue discarded
	MOVQ AX, (DI)
	ADDQ $8, DI
	DECQ R9
	JG   rowloop

done:
	RET
