package vector

import (
	"math/rand"
	"testing"
)

// quantSqRowsRef is the trivially-correct reference for quantSqRows:
// exact integer arithmetic means every implementation must agree with
// it bit for bit.
func quantSqRowsRef(codes, cq []uint8, stride, rows int, out []int64) {
	for r := 0; r < rows; r++ {
		var s int64
		for j := 0; j < stride; j++ {
			d := int64(codes[r*stride+j]) - int64(cq[j])
			s += d * d
		}
		out[r] = s
	}
}

func TestQuantSqRowsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, stride := range []int{8, 16, 24, 32, 40, 64, 128, 136} {
		for _, rows := range []int{0, 1, 2, 3, 7, 65} {
			codes := make([]uint8, rows*stride)
			cq := make([]uint8, stride)
			for i := range codes {
				codes[i] = uint8(rng.Intn(256))
			}
			for i := range cq {
				cq[i] = uint8(rng.Intn(256))
			}
			got := make([]int64, rows)
			want := make([]int64, rows)
			quantSqRows(codes, cq, stride, rows, got)
			quantSqRowsRef(codes, cq, stride, rows, want)
			for r := range got {
				if got[r] != want[r] {
					t.Fatalf("stride=%d rows=%d row %d: got %d want %d", stride, rows, r, got[r], want[r])
				}
			}
		}
	}
	// Extremes: all-0 rows vs all-255 query at the max supported width
	// exercise the lane-accumulation headroom (255²·16384 < 2³¹).
	stride := quantMaxDim
	codes := make([]uint8, 2*stride)
	cq := make([]uint8, stride)
	for i := range cq {
		cq[i] = 255
	}
	for i := stride; i < 2*stride; i++ {
		codes[i] = 255
	}
	out := make([]int64, 2)
	quantSqRows(codes, cq, stride, 2, out)
	if want := int64(255*255) * int64(stride); out[0] != want || out[1] != 0 {
		t.Fatalf("extremes: got %v want [%d 0]", out, want)
	}
}
