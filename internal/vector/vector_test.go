package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistKnownValues(t *testing.T) {
	tests := []struct {
		name string
		m    Metric
		p, q Point
		want float64
	}{
		{"l2-345", L2, Point{0, 0}, Point{3, 4}, 5},
		{"l2-zero", L2, Point{1, 2, 3}, Point{1, 2, 3}, 0},
		{"l2-1d", L2, Point{-2}, Point{3}, 5},
		{"l1", L1, Point{0, 0}, Point{3, 4}, 7},
		{"l1-neg", L1, Point{-1, -1}, Point{1, 1}, 4},
		{"linf", LInf, Point{0, 0}, Point{3, 4}, 4},
		{"linf-neg", LInf, Point{10, 0}, Point{0, 4}, 10},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.Dist(tc.p, tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("%s.Dist(%v,%v) = %v, want %v", tc.m, tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2.Dist(Point{1}, Point{1, 2})
}

func TestSqDistMatchesL2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p, q := randPoint(rng, 6), randPoint(rng, 6)
		d := L2.Dist(p, q)
		if got := SqDist(p, q); math.Abs(got-d*d) > 1e-9 {
			t.Fatalf("SqDist=%v, want %v", got, d*d)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := Point{1.5, -2, 0, 1e-9}
	got, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatalf("round trip = %v, want %v", got, p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "1,a,3", "1,,3", "--5"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	got, err := Parse("  1.0 , 2 ,3 ")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Point{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestParseMetric(t *testing.T) {
	for s, want := range map[string]Metric{
		"l2": L2, "L2": L2, "euclidean": L2, "": L2,
		"l1": L1, "manhattan": L1,
		"linf": LInf, "max": LInf, "chebyshev": LInf,
	} {
		got, err := ParseMetric(s)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMetric("hamming"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestMetricString(t *testing.T) {
	if L2.String() != "L2" || L1.String() != "L1" || LInf.String() != "LInf" {
		t.Error("unexpected metric names")
	}
	if Metric(42).String() != "Metric(42)" {
		t.Error("unexpected fallback name")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestProject(t *testing.T) {
	p := Point{1, 2, 3, 4}
	if got := p.Project(2); !got.Equal(Point{1, 2}) {
		t.Fatalf("Project(2) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic projecting beyond dimensionality")
		}
	}()
	p.Project(5)
}

func TestMean(t *testing.T) {
	got := Mean([]Point{{0, 0}, {2, 4}, {4, 2}})
	if !got.Equal(Point{2, 2}) {
		t.Fatalf("Mean = %v, want [2 2]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Mean")
		}
	}()
	Mean(nil)
}

func randPoint(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.NormFloat64() * 10
	}
	return p
}

// Property: all three metrics satisfy the metric axioms on random points —
// non-negativity, identity, symmetry, and the triangle inequality. The
// triangle inequality underpins every pruning rule in the paper (Theorems
// 3–5), so this is the single most load-bearing invariant in the repo.
func TestMetricAxiomsQuick(t *testing.T) {
	for _, m := range []Metric{L2, L1, LInf} {
		m := m
		f := func(a, b, c [5]float64) bool {
			p, q, r := Point(a[:]), Point(b[:]), Point(c[:])
			dpq, dqp := m.Dist(p, q), m.Dist(q, p)
			if dpq < 0 || math.Abs(dpq-dqp) > 1e-9 {
				return false
			}
			if m.Dist(p, p) != 0 {
				return false
			}
			// Triangle inequality with a tolerance for float rounding.
			return m.Dist(p, r) <= dpq+m.Dist(q, r)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s axioms: %v", m, err)
		}
	}
}

// Property: distances are translation invariant, which Voronoi partitioning
// implicitly relies on when pivots are translated copies of data points.
// Inputs are squashed into a bounded range: the invariant genuinely breaks
// near ±MaxFloat64 through overflow, which no dataset in this repo reaches.
func TestTranslationInvarianceQuick(t *testing.T) {
	squash := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Remainder(v, 1e6)
	}
	f := func(a, b [4]float64, shift float64) bool {
		p, q := Point(a[:]).Clone(), Point(b[:]).Clone()
		for i := range p {
			p[i], q[i] = squash(p[i]), squash(q[i])
		}
		want := Dist(p, q)
		for i := range p {
			p[i] += squash(shift)
			q[i] += squash(shift)
		}
		return math.Abs(Dist(p, q)-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistL2(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := randPoint(rng, 10), randPoint(rng, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = L2.Dist(p, q)
	}
}

func BenchmarkSqDist(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := randPoint(rng, 10), randPoint(rng, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SqDist(p, q)
	}
}
