package vector

import (
	"math"
	"math/rand"
	"testing"

	"knnjoin/internal/nnheap"
)

var allKernels = []Kernel{KernelScalar, KernelBlock, KernelF32, KernelQuantized, KernelAuto}

// adversarialBlock builds a block full of near-tie distances: clusters
// of points at distance ~1 from the origin separated by a few ulps, plus
// exact duplicates — the inputs where an unsound filter bound or a
// changed comparison order would first show.
func adversarialBlock(rng *rand.Rand, n, dim int) *Block {
	b := &Block{}
	base := make(Point, dim)
	for d := range base {
		base[d] = rng.Float64()
	}
	pds := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		p := make(Point, dim)
		copy(p, base)
		switch i % 4 {
		case 0: // exact duplicate of base
		case 1: // one-ulp nudge
			p[i%dim] = math.Nextafter(p[i%dim], 2)
		case 2: // tiny offset, still clustered
			p[i%dim] += 1e-9 * float64(i)
		default: // far point
			for d := range p {
				p[d] = rng.NormFloat64() * 5
			}
		}
		pds = append(pds, float64(len(pds)))
		if err := b.Append(int64(i+1), pds[i], p); err != nil {
			panic(err)
		}
	}
	return b
}

func sortedEqual(a, b []nnheap.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// Every kernel tier must retain a bit-identical candidate set to the
// default float64 block kernel, across dims, metrics, k > n, empty
// blocks, duplicates, and near-ties.
func TestKernelTiersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 8, 32} {
		for _, n := range []int{0, 1, 5, 300} {
			blocks := []*Block{adversarialBlock(rng, n, dim)}
			rb, _ := randBlock(rng, n, dim)
			blocks = append(blocks, rb)
			for _, ref := range blocks {
				for _, m := range []Metric{L2, L1, LInf} {
					for _, k := range []int{1, 4, n + 3} {
						q := make(Point, dim)
						for d := range q {
							q[d] = rng.NormFloat64()
						}
						want := nnheap.NewKHeap(k)
						ref.Prepare(KernelBlock)
						ref.NearestK(q, m, want)
						for _, kern := range allKernels {
							ref.Prepare(kern)
							h := nnheap.NewKHeap(k)
							scanned := ref.NearestK(q, m, h)
							if scanned != n {
								t.Fatalf("%v: scanned %d, want %d", kern, scanned, n)
							}
							if !sortedEqual(h.Sorted(), want.Sorted()) {
								t.Fatalf("dim=%d n=%d k=%d m=%v kernel=%v: candidate set differs from float64 path",
									dim, n, k, m, kern)
							}
						}
					}
				}
			}
		}
	}
}

// Same identity for the range kernels, exercising the theta boundary.
func TestKernelTiersRangeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, dim := range []int{1, 2, 8, 32} {
		b := adversarialBlock(rng, 200, dim)
		q := make(Point, dim)
		for d := range q {
			q[d] = rng.NormFloat64()
		}
		for _, theta := range []float64{0, 1e-12, 1, 5, math.Inf(1)} {
			b.Prepare(KernelBlock)
			want := b.RangeTo(q, 0, b.Len(), L2, theta, nil, nil)
			for _, kern := range allKernels {
				b.Prepare(kern)
				got := b.RangeTo(q, 0, b.Len(), L2, theta, nil, nil)
				if !sortedEqual(got, want) {
					t.Fatalf("dim=%d theta=%v kernel=%v: range hits differ from float64 path", dim, theta, kern)
				}
			}
		}
	}
}

// The batched kernels must agree bit for bit with the sequential
// per-query calls — including per-query windows and the scanned count.
func TestNearestKBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, dim := range []int{1, 2, 8, 32} {
		for _, kern := range allKernels {
			for _, n := range []int{0, 1, 17, 500} {
				b, _ := randBlock(rng, n, dim)
				b.Prepare(kern)
				nq := 9
				qs := make([]Point, nq)
				lo, hi := make([]int, nq), make([]int, nq)
				for i := range qs {
					q := make(Point, dim)
					for d := range q {
						q[d] = rng.NormFloat64() * 10
					}
					qs[i] = q
					lo[i] = rng.Intn(n + 1)
					hi[i] = lo[i] + rng.Intn(n+1-lo[i])
					if i == 0 {
						lo[i], hi[i] = 3, 2 // degenerate window
					}
				}
				for _, m := range []Metric{L2, L1} {
					k := 7
					seqHeaps := make([]*nnheap.KHeap, nq)
					var seqScanned int64
					for i := range qs {
						seqHeaps[i] = nnheap.NewKHeap(k)
						seqScanned += int64(b.NearestKRange(qs[i], lo[i], hi[i], m, seqHeaps[i]))
					}
					batchHeaps := make([]*nnheap.KHeap, nq)
					for i := range batchHeaps {
						batchHeaps[i] = nnheap.NewKHeap(k)
					}
					scanned := b.NearestKBatchRanges(qs, lo, hi, m, batchHeaps)
					if scanned != seqScanned {
						t.Fatalf("dim=%d kern=%v m=%v: batch scanned %d, sequential %d", dim, kern, m, scanned, seqScanned)
					}
					for i := range qs {
						if !sortedEqual(batchHeaps[i].Sorted(), seqHeaps[i].Sorted()) {
							t.Fatalf("dim=%d kern=%v m=%v query %d: batch result differs from sequential", dim, kern, m, i)
						}
					}

					// Full-block batch vs sequential NearestK.
					fullSeq := make([]*nnheap.KHeap, nq)
					fullBatch := make([]*nnheap.KHeap, nq)
					for i := range qs {
						fullSeq[i] = nnheap.NewKHeap(k)
						fullBatch[i] = nnheap.NewKHeap(k)
						b.NearestK(qs[i], m, fullSeq[i])
					}
					if got, want := b.NearestKBatch(qs, m, fullBatch), int64(nq)*int64(n); got != want && n > 0 {
						t.Fatalf("dim=%d kern=%v m=%v: NearestKBatch scanned %d, want %d", dim, kern, m, got, want)
					}
					for i := range qs {
						if !sortedEqual(fullBatch[i].Sorted(), fullSeq[i].Sorted()) {
							t.Fatalf("dim=%d kern=%v m=%v query %d: full batch differs", dim, kern, m, i)
						}
					}
				}
			}
		}
	}
}

func TestRangeToBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, dim := range []int{1, 8, 32} {
		for _, kern := range allKernels {
			b, _ := randBlock(rng, 400, dim)
			b.Prepare(kern)
			nq := 6
			qs := make([]Point, nq)
			lo, hi := make([]int, nq), make([]int, nq)
			for i := range qs {
				q := make(Point, dim)
				for d := range q {
					q[d] = rng.NormFloat64() * 10
				}
				qs[i] = q
				lo[i] = rng.Intn(b.Len() + 1)
				hi[i] = lo[i] + rng.Intn(b.Len()+1-lo[i])
			}
			theta := 10.0
			var seqScanned int64
			want := make([][]nnheap.Candidate, nq)
			for i := range qs {
				want[i] = b.RangeTo(qs[i], lo[i], hi[i], L2, theta, nil, &seqScanned)
			}
			var batchScanned int64
			got := make([][]nnheap.Candidate, nq)
			b.RangeToBatchRanges(qs, lo, hi, L2, theta, got, &batchScanned)
			if batchScanned != seqScanned {
				t.Fatalf("dim=%d kern=%v: batch scanned %d, sequential %d", dim, kern, batchScanned, seqScanned)
			}
			for i := range qs {
				if !sortedEqual(got[i], want[i]) {
					t.Fatalf("dim=%d kern=%v query %d: batch range hits differ", dim, kern, i)
				}
			}
		}
	}
}

// Prepare must fall back to the exact tier when a block cannot support
// the requested one, and report what it resolved.
func TestPrepareFallbacks(t *testing.T) {
	empty := &Block{}
	empty.Prepare(KernelQuantized)
	if empty.ActiveKernel() != KernelBlock {
		t.Fatalf("empty block ActiveKernel = %v, want block", empty.ActiveKernel())
	}

	inf := &Block{}
	if err := inf.Append(1, 0, Point{1, math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	inf.Prepare(KernelQuantized)
	if inf.ActiveKernel() != KernelBlock {
		t.Fatalf("non-finite block quantized ActiveKernel = %v, want block fallback", inf.ActiveKernel())
	}
	// The f32 tier tolerates non-finite coordinates (the row error norm
	// disables pruning for those rows) and must still match the exact
	// kernel: the finite row wins, the Inf-distance row is dropped by
	// the bound check exactly as the float64 path drops it.
	if err := inf.Append(2, 1, Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	inf.Prepare(KernelF32)
	if inf.ActiveKernel() != KernelF32 {
		t.Fatalf("non-finite block f32 ActiveKernel = %v", inf.ActiveKernel())
	}
	h := nnheap.NewKHeap(1)
	inf.NearestK(Point{1, 2}, L2, h)
	if h.Len() != 1 || h.Top().ID != 2 {
		t.Fatalf("retained %d candidates (top %+v), want the finite row", h.Len(), h.Top())
	}

	rng := rand.New(rand.NewSource(46))
	big, _ := randBlock(rng, 256, 16)
	big.Prepare(KernelAuto)
	if big.ActiveKernel() != KernelQuantized {
		t.Fatalf("auto on 256×16 resolved to %v, want quantized", big.ActiveKernel())
	}
	small, _ := randBlock(rng, 8, 2)
	small.Prepare(KernelAuto)
	if small.ActiveKernel() != KernelBlock {
		t.Fatalf("auto on 8×2 resolved to %v, want block", small.ActiveKernel())
	}
}

func TestParseKernel(t *testing.T) {
	for s, want := range map[string]Kernel{
		"": KernelBlock, "block": KernelBlock, "scalar": KernelScalar,
		"f32": KernelF32, "float32": KernelF32,
		"quantized": KernelQuantized, "quant": KernelQuantized,
		"auto": KernelAuto,
	} {
		got, err := ParseKernel(s)
		if err != nil || got != want {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != "" && ParseKernelMust(got.String()) != got {
			t.Fatalf("round trip of %v failed", got)
		}
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Fatal("ParseKernel accepted an unknown spelling")
	}
}

// ParseKernelMust is a test helper: String() output must round-trip.
func ParseKernelMust(s string) Kernel {
	k, err := ParseKernel(s)
	if err != nil {
		panic(err)
	}
	return k
}

// The safety invariant of the prune: a filter tier's lower bound never
// exceeds the true distance (checked in squared space against the exact
// kernel). Violating it would silently drop true neighbors.
func FuzzQuantizedLowerBound(f *testing.F) {
	f.Add(int64(1), 4, 0.0, 1.0)
	f.Add(int64(2), 32, -100.0, 1e-6)
	f.Add(int64(3), 1, 1e12, 5.0)
	f.Add(int64(4), 8, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, dim int, center, spread float64) {
		if dim < 1 || dim > 64 {
			return
		}
		if math.IsNaN(center) || math.IsInf(center, 0) || math.IsNaN(spread) || math.IsInf(spread, 0) {
			return
		}
		if math.Abs(center) > 1e100 || math.Abs(spread) > 1e100 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		n := 40
		b := &Block{}
		for i := 0; i < n; i++ {
			p := make(Point, dim)
			for d := range p {
				p[d] = center + rng.NormFloat64()*spread
			}
			if err := b.Append(int64(i), float64(i), p); err != nil {
				t.Fatal(err)
			}
		}
		q := make(Point, dim)
		for d := range q {
			q[d] = center + rng.NormFloat64()*spread*3
		}
		sc := &Scratch{}
		b.Prepare(KernelQuantized)
		if b.ActiveKernel() == KernelQuantized {
			for i := 0; i < n; i++ {
				lb := b.quantLowerBound(i, q, sc)
				if lb <= 0 {
					continue
				}
				if s := b.SqDistTo(i, q); lb*lb > s {
					t.Fatalf("quantized lower bound %v exceeds true distance %v (row %d)", lb, math.Sqrt(s), i)
				}
			}
		}
		b.Prepare(KernelF32)
		for i := 0; i < n; i++ {
			lb := b.f32LowerBound(i, q, sc)
			if lb <= 0 {
				continue
			}
			if s := b.SqDistTo(i, q); lb*lb > s {
				t.Fatalf("f32 lower bound %v exceeds true distance %v (row %d)", lb, math.Sqrt(s), i)
			}
		}
	})
}
