//go:build amd64

package vector

// quantSqRowsAsm is the SSE2 code-space distance kernel
// (quantsq_amd64.s): for each of rows consecutive code rows of width
// stride it writes out[r] = Σ_j (codes[r·stride+j] − q[j])². SSE2 is
// part of the amd64 baseline, so no feature detection is needed.
//
//go:noescape
func quantSqRowsAsm(codes, q *uint8, stride, rows int, out *int64)

// quantSqRows computes the exact code-space squared distance of every
// row in codes (rows rows of width stride) to the query codes cq,
// writing one int64 per row into out. stride must be a positive
// multiple of 8 (buildQuant pads rows to that shape) and at most
// quantMaxDim rounded up, which keeps the kernel's int32 lane
// accumulation exact. Integer arithmetic has a single possible answer,
// so the assembly and generic paths agree bit for bit — the property
// test in quantsq_test.go pins it.
func quantSqRows(codes, cq []uint8, stride, rows int, out []int64) {
	if rows == 0 {
		return
	}
	_ = codes[rows*stride-1]
	_ = cq[stride-1]
	_ = out[rows-1]
	quantSqRowsAsm(&codes[0], &cq[0], stride, rows, &out[0])
}
