package vector

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/nnheap"
)

// Block is a columnar batch of points: all coordinates live in one
// contiguous row-major []float64 backing store stamped with a single
// dimensionality, with object ids and pivot distances in parallel
// slices. It is the reduce-side working representation of the kNN-join
// pipeline — a whole reducer value group decodes into one Block (see
// codec.DecodeBlock) instead of one freshly allocated Point per record,
// so the distance loops of Algorithm 3 run over flat, cache-resident
// arrays instead of chasing per-object pointers.
//
// The zero value is an empty block; the first appended row stamps Dim.
// Rows are append-only and identified by index.
type Block struct {
	// Dim is the dimensionality of every row. A block holding at least
	// one row of zero-dimensional points keeps Dim == 0.
	Dim int
	// IDs holds the object id of each row.
	IDs []int64
	// PivotDist holds each row's distance to its Voronoi pivot (the
	// Tagged.PivotDist field). Within one S partition delivered by the
	// shuffle's composite-key sort this slice is ascending, which is what
	// PivotDistWindow exploits.
	PivotDist []float64
	// Coords is the row-major backing store: row i occupies
	// Coords[i*Dim : (i+1)*Dim].
	Coords []float64

	// Kernel tier state, attached by Prepare (kernel.go). kern is the
	// resolved scan tier; the remaining fields are the filter
	// representations and their certified error bounds. All are nil /
	// zero for an unprepared block, which scans with the exact fused
	// float64 kernel as before.
	kern     Kernel
	coords32 []float32 // float32 mirror of Coords (KernelF32)
	errF32   []float64 // per-row ‖x − x32‖·errInflate
	codes    []uint8   // per-block affine uint8 codes (KernelQuantized)
	qStride  int       // code row width: Dim padded to a multiple of 8
	errQ     []float64 // per-row ‖x − x̂‖·errInflate
	qMin     float64   // affine grid origin
	qScale   float64   // affine grid step ((max−min)/255)
	qRecErr  float64   // absolute slack for reconstruction roundings
}

// Len returns the number of rows.
func (b *Block) Len() int { return len(b.IDs) }

// At returns row i as a Point view sharing the backing array — no copy.
// The view is valid until the next Append grows the block.
func (b *Block) At(i int) Point {
	return Point(b.Coords[i*b.Dim : (i+1)*b.Dim])
}

// Append adds one row. The first row stamps the block's dimensionality;
// a later row of a different dimensionality is a data error and is
// reported instead of corrupting the block — the driver.CheckDims
// treatment, so a malformed reducer group fails the job rather than
// panicking the worker. Appending also drops any filter mirrors a
// previous Prepare attached (they would be stale); call Prepare again
// after the last row.
func (b *Block) Append(id int64, pivotDist float64, p Point) error {
	if len(b.IDs) == 0 {
		b.Dim = len(p)
	} else if len(p) != b.Dim {
		return fmt.Errorf("vector: appending %d-dim point to %d-dim block", len(p), b.Dim)
	}
	if b.kern != KernelBlock || b.coords32 != nil || b.codes != nil {
		b.Prepare(KernelBlock)
	}
	b.IDs = append(b.IDs, id)
	b.PivotDist = append(b.PivotDist, pivotDist)
	b.Coords = append(b.Coords, p...)
	return nil
}

// SqDistTo returns the squared Euclidean distance between row i and q —
// the same sqDistL2 kernel vector.SqDist runs, applied to the flat
// backing store, so the two agree bit for bit. Only meaningful under L2;
// hot loops defer the sqrt to emit time.
func (b *Block) SqDistTo(i int, q Point) float64 {
	if len(q) != b.Dim {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", b.Dim, len(q)))
	}
	return sqDistL2(b.Coords[i*b.Dim:i*b.Dim+len(q)], q)
}

// DistTo returns the metric distance between row i and q. It delegates
// to Metric.Dist over a zero-copy row view, so results (and the
// dimension-mismatch panic) are identical by construction.
func (b *Block) DistTo(i int, q Point, m Metric) float64 {
	return m.Dist(b.At(i), q)
}

// NearestK pushes every row's distance to q onto h — the fused candidate
// loop of the reduce-side kNN computations. Under L2 the pushed
// distances are SQUARED (monotone in the true distance, so the retained
// set is identical); the caller takes the single sqrt per survivor at
// emit time. Under L1/L∞ true distances are pushed. It returns the
// number of rows scanned, which callers charge to the paper's
// distance-computation counter.
func (b *Block) NearestK(q Point, m Metric, h *nnheap.KHeap) int {
	return b.NearestKRange(q, 0, b.Len(), m, h)
}

// NearestKRange is NearestK restricted to rows [lo, hi) — the loop body
// of Algorithm 3 line 22 after Theorem-2 windowing. Under L2 it
// dispatches to the block's active kernel tier (see kernel.go); every
// tier retains a bit-identical candidate set. The fused float64 loop
// (scanF64) inlines the sqDistL2 kernel with a local copy of the heap's
// rejection bound, so a candidate that a full heap would reject never
// pays the Push call. The stride and summation order replicate sqDistL2
// exactly, so every retained squared distance is bit-identical to the
// scalar path's. One caveat: comparisons happen in squared space, so if
// two DISTINCT squared distances round to the same float64 under sqrt
// (adjacent doubles at the k-th-best boundary — never observed in the
// seed sweeps), the retained ID may differ from the scalar path's; the
// emitted distances are equal either way, a tie Definition 1 permits to
// resolve arbitrarily. (A partial-sum early-abandon variant measured
// slower up to d=32: the per-stride bound compare serializes the four
// accumulator chains for more than the skipped elements save.)
func (b *Block) NearestKRange(q Point, lo, hi int, m Metric, h *nnheap.KHeap) int {
	return b.NearestKRangeScratch(q, lo, hi, m, h, nil)
}

// NearestKRangeScratch is NearestKRange with caller-owned kernel
// scratch, so query loops on the filter tiers (f32/quantized) reuse the
// query-side conversion buffers instead of allocating per call. sc may
// be nil.
func (b *Block) NearestKRangeScratch(q Point, lo, hi int, m Metric, h *nnheap.KHeap, sc *Scratch) int {
	if lo >= hi {
		return 0
	}
	if len(q) != b.Dim {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", b.Dim, len(q)))
	}
	switch m {
	case L2:
		if sc == nil {
			sc = &Scratch{}
		}
		b.nearestKGuts(q, lo, hi, h, sc)
	case L1, LInf:
		bound := math.Inf(1)
		if h.Full() {
			bound = h.Top().Dist
		}
		for i := lo; i < hi; i++ {
			d := b.DistTo(i, q, m)
			if d >= bound {
				continue
			}
			h.Push(nnheap.Candidate{ID: b.IDs[i], Dist: d})
			if h.Full() {
				bound = h.Top().Dist
			}
		}
	default:
		panic("vector: unknown metric")
	}
	return hi - lo
}

// RangeTo appends to dst a candidate for every row of [lo, hi) within
// distance theta of q (inclusive) and returns the extended slice; the
// appended distances are true metric distances. The scanned row count is
// added to *scanned when it is non-nil.
func (b *Block) RangeTo(q Point, lo, hi int, m Metric, theta float64, dst []nnheap.Candidate, scanned *int64) []nnheap.Candidate {
	if lo >= hi {
		return dst
	}
	if len(q) != b.Dim {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", b.Dim, len(q)))
	}
	if scanned != nil {
		*scanned += int64(hi - lo)
	}
	if m == L2 {
		// The accept boundary is decided on the true (sqrt'd) distance so
		// results match Metric.Dist bit for bit at the radius edge. The
		// filter tiers (f32/quantized) first skip rows whose certified
		// lower bound exceeds theta — rows the exact test would also
		// reject — so the appended set is identical for every tier.
		return b.rangeGuts(q, lo, hi, theta, dst, &Scratch{})
	}
	for i := lo; i < hi; i++ {
		if d := b.DistTo(i, q, m); d <= theta {
			dst = append(dst, nnheap.Candidate{ID: b.IDs[i], Dist: d})
		}
	}
	return dst
}

// PivotDistWindow returns the half-open row range [from, to) of rows
// [lo, hi) whose PivotDist lies in [dLo, dHi]. Rows [lo, hi) must be
// ascending in PivotDist — the order the shuffle's composite-key sort
// guarantees for every S partition. This is the pivot-gap prefilter: the
// paper's Theorem-2 corollary (|d(s,p) − d(r,p)| ≥ θ ⇒ s prunable)
// applied over the flat PivotDist slice before any coordinate is
// touched. It is the Block form of voronoi.WindowIndices.
func (b *Block) PivotDistWindow(lo, hi int, dLo, dHi float64) (from, to int) {
	pd := b.PivotDist[lo:hi]
	from = lo + sort.Search(len(pd), func(i int) bool { return pd[i] >= dLo })
	to = lo + sort.Search(len(pd), func(i int) bool { return pd[i] > dHi })
	return from, to
}
