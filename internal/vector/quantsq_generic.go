//go:build !amd64

package vector

// quantSqRows is the portable code-space distance kernel: for each of
// rows consecutive code rows of width stride it writes
// out[r] = Σ_j (codes[r·stride+j] − cq[j])². stride must be a positive
// multiple of 8 (buildQuant pads rows to that shape). The sum is exact
// integer arithmetic, so this path and the amd64 SSE2 path return
// identical values by construction.
func quantSqRows(codes, cq []uint8, stride, rows int, out []int64) {
	for r := 0; r < rows; r++ {
		row := codes[r*stride : r*stride+stride]
		q := cq[:len(row)]
		var s0, s1, s2, s3 int64
		for len(row) >= 4 {
			q = q[:len(row)]
			d0 := int32(row[0]) - int32(q[0])
			d1 := int32(row[1]) - int32(q[1])
			d2 := int32(row[2]) - int32(q[2])
			d3 := int32(row[3]) - int32(q[3])
			s0 += int64(d0 * d0)
			s1 += int64(d1 * d1)
			s2 += int64(d2 * d2)
			s3 += int64(d3 * d3)
			row, q = row[4:], q[4:]
		}
		out[r] = (s0 + s1) + (s2 + s3)
	}
}
