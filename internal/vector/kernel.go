package vector

import (
	"fmt"
	"math"

	"knnjoin/internal/nnheap"
)

// This file implements the tiered distance-kernel layer. A Block always
// keeps its exact float64 coordinates; Prepare optionally attaches a
// cheaper *filter* representation — float32 mirrors or uint8 affine
// codes — that the L2 scan kernels consult first. A filter never decides
// membership on its own: it computes a certified LOWER bound on the true
// distance, skips a row only when that bound already exceeds the current
// rejection threshold (a skip the exact kernel would also have taken),
// and re-ranks every survivor with the exact float64 kernel. Final
// results are therefore bit-identical to the float64 path for every
// tier — the same filter-then-refine discipline the paper's Theorem-2
// windows apply one level up, pushed down to the row scan (the hybrid
// CPU/GPU design of arXiv:1810.04758 applies the same split across
// devices).
//
// Lower-bound derivations (all distances L2, x the row, q the query):
//
//   float32 tier.  s32 is the float32 inner-product accumulation over
//   the converted row x32 and query q32. With γ bounding the relative
//   error of a dim-term float32 summation (γ ≥ (dim+2)·2⁻²⁴), the true
//   ‖x32−q32‖ ≥ √s32·(1−γ), and two triangle-inequality hops remove the
//   conversion error:
//       d(x,q) ≥ ‖x32−q32‖ − ‖x−x32‖ − ‖q−q32‖
//              ≥ √s32·(1−γ) − rowErr − qErr
//   rowErr = ‖x−x32‖ is computed exactly in float64 at Prepare time,
//   qErr once per scan.
//
//   quantized tier.  Each coordinate is coded c = round((v−min)/scale)
//   into a uint8 with per-block min/scale; the reconstruction is
//   x̂ⱼ = min + cⱼ·scale. The code-space squared distance
//   isum = Σ (cxⱼ−cqⱼ)² is EXACT in int64 (≤ 255²·dim ≪ 2⁵³), so
//   ‖x̂−q̂‖ = scale·√isum up to float64 rounding, and
//       d(x,q) ≥ scale·√isum·(1−ε) − rowErr − qErr − recErr
//   with rowErr = ‖x−x̂‖ and qErr = ‖q−q̂‖ measured in float64 at build /
//   scan time, ε = 1e-9 absorbing the √ and × roundings, and recErr a
//   per-block absolute slack covering the reconstruction roundings of
//   min + c·scale (≤ (dim+1)·(|min|+256·scale)·1e-12, three orders above
//   the true 2⁻⁵² terms). A fuzz test pins the invariant lb ≤ d(x,q).
//
// Both tiers only filter while the heap is full (bound < +Inf); before
// that every row is scored exactly, so warm-up behavior matches the
// float64 kernel push for push.

// Kernel selects the scan tier a Block uses for L2 distance kernels.
// The zero value is KernelBlock — the fused float64 kernels that were
// previously the only path — so existing construction sites keep their
// exact behavior. Non-L2 metrics always use the exact scalar path
// regardless of tier.
type Kernel uint8

const (
	// KernelBlock is the fused float64 kernel over the columnar store
	// (4-way unrolled, heap-bound rejection). The default.
	KernelBlock Kernel = iota
	// KernelScalar is the reference tier: one sqDistL2 call per row,
	// no fused bound short-circuit, no batching. It exists so benchmarks
	// and debugging can force the pre-columnar code shape.
	KernelScalar
	// KernelF32 scans a float32 mirror of the coordinates first and
	// refines survivors with the exact float64 kernel.
	KernelF32
	// KernelQuantized scans per-block min/max affine uint8 codes first
	// (8× less bandwidth than float64) and refines survivors with the
	// exact float64 kernel. Falls back to KernelBlock at Prepare time
	// when the block holds non-finite coordinates.
	KernelQuantized
	// KernelAuto lets Prepare pick a tier from the block's shape using
	// the same break-even points the planner prices.
	KernelAuto
)

// KernelNames lists the accepted ParseKernel spellings in menu order.
var KernelNames = []string{"scalar", "block", "f32", "quantized", "auto"}

// ParseKernel maps a CLI spelling to a Kernel. The empty string selects
// the default KernelBlock.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "block":
		return KernelBlock, nil
	case "scalar":
		return KernelScalar, nil
	case "f32", "float32":
		return KernelF32, nil
	case "quantized", "quant", "uint8":
		return KernelQuantized, nil
	case "auto":
		return KernelAuto, nil
	}
	return KernelBlock, fmt.Errorf("vector: unknown kernel %q (want scalar|block|f32|quantized|auto)", s)
}

// String returns the ParseKernel spelling.
func (k Kernel) String() string {
	switch k {
	case KernelBlock:
		return "block"
	case KernelScalar:
		return "scalar"
	case KernelF32:
		return "f32"
	case KernelQuantized:
		return "quantized"
	case KernelAuto:
		return "auto"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// errInflate pads the float64-computed error norms (rowErr, qErr) so
// their own summation rounding can never make a certified bound
// optimistic.
const errInflate = 1 + 1e-12

// quantRelSlack absorbs the √ and × roundings of scale·√isum. 1e-9 is
// seven orders above the true 2⁻⁵² rounding terms and costs nothing in
// pruning power.
const quantRelSlack = 1 - 1e-9

// Prepare resolves and attaches the scan tier. It must be called after
// the last Append: appending a row drops any attached filter mirrors
// (the block falls back to the exact float64 kernel) because stale
// mirrors would break the certified bounds. Prepare is idempotent and
// cheap to call on an empty block. KernelF32 and KernelQuantized fall
// back to KernelBlock when the block cannot support them (empty,
// zero-dimensional, or — for quantized — non-finite coordinates), so
// ActiveKernel reports the tier actually in effect.
func (b *Block) Prepare(k Kernel) {
	b.kern = KernelBlock
	b.coords32, b.errF32, b.codes, b.errQ = nil, nil, nil, nil
	b.qMin, b.qScale, b.qRecErr, b.qStride = 0, 0, 0, 0
	if k == KernelAuto {
		k = b.autoKernel()
	}
	switch k {
	case KernelScalar:
		b.kern = KernelScalar
	case KernelF32:
		if b.buildF32() {
			b.kern = KernelF32
		}
	case KernelQuantized:
		if b.buildQuant() {
			b.kern = KernelQuantized
		}
	}
}

// ActiveKernel reports the tier Prepare resolved to (KernelBlock for a
// block that was never prepared).
func (b *Block) ActiveKernel() Kernel { return b.kern }

// autoKernel is KernelAuto's per-block tier choice. The quantized tier
// wins once the scan is bandwidth-bound — BENCH_dist places the
// crossover around d=8 — and needs enough rows for its one-time code
// build to amortize. Small or low-dimensional blocks stay on the fused
// float64 kernel, which is already compute-bound there.
func (b *Block) autoKernel() Kernel {
	if b.Dim >= 8 && b.Len() >= 128 {
		return KernelQuantized
	}
	return KernelBlock
}

func (b *Block) buildF32() bool {
	n, dim := b.Len(), b.Dim
	if n == 0 || dim == 0 {
		return false
	}
	c32 := make([]float32, len(b.Coords))
	errs := make([]float64, n)
	for i := 0; i < n; i++ {
		row := b.Coords[i*dim : (i+1)*dim]
		var sum float64
		for j, v := range row {
			f := float32(v)
			c32[i*dim+j] = f
			d := v - float64(f)
			sum += d * d
		}
		// A row with overflowing (Inf after conversion) or NaN
		// coordinates gets a non-finite error norm, so its lower bound
		// never certifies a skip and the row is always refined exactly.
		errs[i] = math.Sqrt(sum) * errInflate //lint:allow sqrtfree: representation error norm ‖row−row32‖, once per row at block build
	}
	b.coords32, b.errF32 = c32, errs
	return true
}

// quantMaxDim caps the quantized tier's dimensionality. The SSE2
// code-space kernel (quantSqRows) accumulates squared code deltas in
// int32 lanes; 255²·16384 < 2³¹ keeps every lane and the final
// horizontal sum exact. Blocks wider than this fall back to the fused
// float64 kernel.
const quantMaxDim = 16384

func (b *Block) buildQuant() bool {
	n, dim := b.Len(), b.Dim
	if n == 0 || dim == 0 || dim > quantMaxDim {
		return false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range b.Coords {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := (hi - lo) / 255
	var inv float64
	if scale > 0 {
		inv = 1 / scale
	}
	// Code rows are padded to a multiple of 8 zero codes so the SIMD
	// kernel can consume whole 8-byte groups; quantQuery zero-pads the
	// query codes the same way, so padding contributes 0 to every sum.
	stride := (dim + 7) &^ 7
	codes := make([]uint8, n*stride)
	errs := make([]float64, n)
	for i := 0; i < n; i++ {
		row := b.Coords[i*dim : (i+1)*dim]
		crow := codes[i*stride : i*stride+dim]
		var sum float64
		for j, v := range row {
			c := quantizeCoord(v, lo, inv)
			crow[j] = c
			d := v - (lo + float64(c)*scale)
			sum += d * d
		}
		errs[i] = math.Sqrt(sum) * errInflate //lint:allow sqrtfree: quantization error norm ‖row−roŵ‖, once per row at block build
	}
	b.codes, b.errQ, b.qMin, b.qScale, b.qStride = codes, errs, lo, scale, stride
	b.qRecErr = float64(dim+1) * (math.Abs(lo) + 256*scale) * 1e-12
	return true
}

// quantizeCoord codes v against the affine grid, rounding half up.
// Any deterministic rounding is valid — the certified error terms are
// measured against the actual reconstruction — and for in-range values
// this form matches the round-half-away convention while avoiding a
// math.Round call in the O(n·dim) build pass. Out-of-range and NaN
// inputs (possible for query points) clamp to the grid ends.
func quantizeCoord(v, lo, inv float64) uint8 {
	f := (v - lo) * inv
	if !(f > 0) { // negative, -0, or NaN
		return 0
	}
	if f >= 255 {
		return 255
	}
	return uint8(f + 0.5)
}

// Scratch is reusable per-caller workspace for the filter tiers' query-
// side conversions. A Block is shared read-only across goroutines, so
// the workspace lives with the caller: reuse one Scratch per goroutine
// (or per query loop) and the scan kernels allocate nothing after the
// first call. A nil *Scratch is accepted everywhere and falls back to a
// transient allocation.
type Scratch struct {
	q32 []float32
	cq  []uint8
	is  []int64
}

// isumBuf returns an n-element int64 buffer for code-space row sums,
// reusing the scratch's allocation across chunks.
func (sc *Scratch) isumBuf(n int) []int64 {
	if cap(sc.is) < n {
		sc.is = make([]int64, n)
	}
	return sc.is[:n]
}

// f32Query converts q into the scratch's float32 buffer and returns the
// buffer plus the padded conversion error norm ‖q−q32‖·errInflate.
func (sc *Scratch) f32Query(q Point) ([]float32, float64) {
	if cap(sc.q32) < len(q) {
		sc.q32 = make([]float32, len(q))
	}
	q32 := sc.q32[:len(q)]
	var sum float64
	for j, v := range q {
		f := float32(v)
		q32[j] = f
		d := v - float64(f)
		sum += d * d
	}
	return q32, math.Sqrt(sum) * errInflate //lint:allow sqrtfree: query error norm ‖q−q32‖, once per query
}

// quantQuery codes q against the block's affine grid and returns the
// code buffer plus the padded quantization error norm ‖q−q̂‖·errInflate.
// The buffer is stride long, zero-padded past len(q) to mirror the
// zero-padded code rows (see buildQuant).
func (sc *Scratch) quantQuery(q Point, lo, scale float64, stride int) ([]uint8, float64) {
	if cap(sc.cq) < stride {
		sc.cq = make([]uint8, stride)
	}
	var inv float64
	if scale > 0 {
		inv = 1 / scale
	}
	cq := sc.cq[:stride]
	for j := len(q); j < stride; j++ {
		cq[j] = 0
	}
	var sum float64
	for j, v := range q {
		c := quantizeCoord(v, lo, inv)
		cq[j] = c
		d := v - (lo + float64(c)*scale)
		sum += d * d
	}
	return cq, math.Sqrt(sum) * errInflate //lint:allow sqrtfree: query error norm ‖q−q̂‖, once per query
}

// scanScalar is the KernelScalar tier: the pre-columnar shape — one
// out-of-line sqDistL2 call per row instead of the fused inline loop,
// with the same rejection-bound semantics so the retained set stays
// identical to the fused path (including the +Inf-distance edge, which
// the bound check drops whether or not the heap is full).
func (b *Block) scanScalar(q Point, lo, hi int, h *nnheap.KHeap) {
	dim := b.Dim
	ids := b.IDs[lo:hi] // window view: ranging over it proves ids[o]
	bound := math.Inf(1)
	if h.Full() {
		bound = h.Top().Dist
	}
	for o := range ids {
		i := lo + o
		s := sqDistL2(b.Coords[i*dim:i*dim+len(q)], q)
		if s >= bound {
			continue
		}
		h.Push(nnheap.Candidate{ID: ids[o], Dist: s})
		if h.Full() {
			bound = h.Top().Dist
		}
	}
}

// scanF64 is the KernelBlock tier: the fused float64 loop (see the
// NearestKRange comment in block.go for the squared-space caveat).
func (b *Block) scanF64(q Point, lo, hi int, h *nnheap.KHeap) {
	dim := b.Dim
	ids := b.IDs[lo:hi]
	bound := math.Inf(1)
	if h.Full() {
		bound = h.Top().Dist
	}
	for o := range ids {
		// Chunk-advance shape for bounds-check elimination, exactly as
		// in sqDistL2 — same accumulation order, bit-identical sums.
		i := lo + o
		row := b.Coords[i*dim : i*dim+len(q)]
		qr := q[:len(row)]
		var s0, s1, s2, s3 float64
		for len(row) >= 4 {
			qr = qr[:len(row)]
			d0 := row[0] - qr[0]
			d1 := row[1] - qr[1]
			d2 := row[2] - qr[2]
			d3 := row[3] - qr[3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
			row, qr = row[4:], qr[4:]
		}
		qr = qr[:len(row)]
		for j, v := range row {
			d := v - qr[j]
			s0 += d * d
		}
		s := (s0 + s1) + (s2 + s3)
		if s >= bound {
			continue
		}
		h.Push(nnheap.Candidate{ID: ids[o], Dist: s})
		if h.Full() {
			bound = h.Top().Dist
		}
	}
}

// scanF32 is the KernelF32 tier: float32 filter, exact float64 refine.
// The skip test is priced sqrt-free exactly as in scanQuant: the lower
// bound √s32·(1−γ) − rowErr − qErr ≥ √bound is compared in squared
// space against t = (√bound + rowErr + qErr)·(1+1e-9)/(1−γ), with
// √bound recomputed only on heap-bound changes and the (1+1e-9) pad
// keeping the threshold conservative across its own float64 roundings.
func (b *Block) scanF32(q Point, lo, hi int, h *nnheap.KHeap, sc *Scratch) {
	dim := b.Dim
	q32, qErr := sc.f32Query(q)
	gamma := float64(dim+8) * 1.2e-7
	invG := (1 + 1e-9) / (1 - gamma)
	ids := b.IDs[lo:hi] // window views: ranging over ids proves [o]
	errs := b.errF32[lo:hi][:hi-lo]
	bound := math.Inf(1)
	var tBase float64
	full := h.Full()
	if full {
		bound = h.Top().Dist
		tBase = math.Sqrt(bound) + qErr //lint:allow sqrtfree: threshold reprice on heap-bound change only, not per row
	}
	for o := range ids {
		i := lo + o
		if full {
			// Chunk-advance shape for bounds-check elimination (see
			// sqDistL2); same accumulation order as before.
			row := b.coords32[i*dim : i*dim+len(q32)]
			qr := q32[:len(row)]
			var s0, s1, s2, s3 float32
			for len(row) >= 4 {
				qr = qr[:len(row)]
				d0 := row[0] - qr[0]
				d1 := row[1] - qr[1]
				d2 := row[2] - qr[2]
				d3 := row[3] - qr[3]
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
				row, qr = row[4:], qr[4:]
			}
			qr = qr[:len(row)]
			for j, v := range row {
				d := v - qr[j]
				s0 += d * d
			}
			s := float64((s0 + s1) + (s2 + s3))
			// A float32 accumulation that overflowed to +Inf carries no
			// relative-error guarantee; refine such rows exactly. NaN
			// sums (NaN coordinates) also fail the skip test.
			if !math.IsInf(s, 1) {
				t := (tBase + errs[o]) * invG
				if s >= t*t {
					continue
				}
			}
		}
		s := sqDistL2(b.Coords[i*dim:i*dim+len(q)], q)
		if s >= bound {
			continue
		}
		h.Push(nnheap.Candidate{ID: ids[o], Dist: s})
		if h.Full() {
			full = true
			bound = h.Top().Dist
			tBase = math.Sqrt(bound) + qErr //lint:allow sqrtfree: threshold reprice on heap-bound change only, not per row
		}
	}
}

// quantChunkRows bounds the per-chunk isum buffer of the quantized
// scans: the SIMD kernel fills code-space sums for up to this many rows
// per call (8 KiB of int64 scratch), amortizing its call overhead while
// keeping the scratch cache-resident for any window size.
const quantChunkRows = 1024

// scanQuant is the KernelQuantized tier: uint8 code filter, exact
// float64 refine. The code-space sums are bound-independent, so each
// chunk computes them in one SIMD sweep (quantSqRows) and the skip test
// reduces to one multiply-compare per row: instead of pricing
//
//	lb = scale·√isum·quantRelSlack − rowErr − qErr − recErr ≥ √bound
//
// with a sqrt per row, it compares isum against the threshold
//
//	t = (√bound + rowErr + qErr + recErr) · (1+1e-9)/(scale·quantRelSlack)
//
// in squared code space, recomputing √bound only when the heap bound
// changes. The (1+1e-9) pad rounds the threshold up past every float64
// rounding in its evaluation, so isum ≥ t² still certifies lb ≥ √bound:
// the skip set stays certified (and a certified skip can never change
// the heap — the exact refine would have rejected the row via s ≥ bound
// anyway), keeping results bit-identical to the float64 path.
func (b *Block) scanQuant(q Point, lo, hi int, h *nnheap.KHeap, sc *Scratch) {
	dim := b.Dim
	stride := b.qStride
	cq, qErr := sc.quantQuery(q, b.qMin, b.qScale, stride)
	slack := qErr + b.qRecErr
	invQ := (1 + 1e-9) / (b.qScale * quantRelSlack)
	bound := math.Inf(1)
	var tBase float64
	full := h.Full()
	if full {
		bound = h.Top().Dist
		tBase = math.Sqrt(bound) + slack //lint:allow sqrtfree: threshold reprice on heap-bound change only, not per row
	}
	for p0 := lo; p0 < hi; p0 += quantChunkRows {
		p1 := min(p0+quantChunkRows, hi)
		isums := sc.isumBuf(p1 - p0)
		quantSqRows(b.codes[p0*stride:p1*stride], cq, stride, p1-p0, isums)
		ids := b.IDs[p0:p1] // window views: ranging over ids proves [o]
		errs := b.errQ[p0:p1][:len(ids)]
		is := isums[:len(ids)]
		for o := range ids {
			if full {
				t := (tBase + errs[o]) * invQ
				if float64(is[o]) >= t*t {
					continue
				}
			}
			i := p0 + o
			s := sqDistL2(b.Coords[i*dim:i*dim+len(q)], q)
			if s >= bound {
				continue
			}
			h.Push(nnheap.Candidate{ID: ids[o], Dist: s})
			if h.Full() {
				full = true
				bound = h.Top().Dist
				tBase = math.Sqrt(bound) + slack //lint:allow sqrtfree: threshold reprice on heap-bound change only, not per row
			}
		}
	}
}

// quantLowerBound exposes one row's quantized lower bound for the fuzz
// test pinning lb ≤ d(x,q). scanQuant prices the same bound sqrt-free
// in squared code space; this is the distance-space form it derives
// from, fed by the same quantSqRows code-space sum.
func (b *Block) quantLowerBound(i int, q Point, sc *Scratch) float64 {
	stride := b.qStride
	cq, qErr := sc.quantQuery(q, b.qMin, b.qScale, stride)
	var isum [1]int64
	quantSqRows(b.codes[i*stride:(i+1)*stride], cq, stride, 1, isum[:])
	return b.qScale*math.Sqrt(float64(isum[0]))*quantRelSlack - b.errQ[i] - qErr - b.qRecErr //lint:allow sqrtfree: certified lower bound is defined in true units; fuzz-gate helper, not the scan loop
}

// f32LowerBound is quantLowerBound's float32-tier sibling.
func (b *Block) f32LowerBound(i int, q Point, sc *Scratch) float64 {
	dim := b.Dim
	q32, qErr := sc.f32Query(q)
	var s0 float32
	for j := 0; j < dim; j++ {
		d := b.coords32[i*dim+j] - q32[j]
		s0 += d * d
	}
	s := float64(s0)
	if math.IsInf(s, 1) {
		return math.Inf(-1)
	}
	gamma := float64(dim+8) * 1.2e-7
	return math.Sqrt(s)*(1-gamma) - b.errF32[i] - qErr //lint:allow sqrtfree: certified lower bound is defined in true units; fuzz-gate helper, not the scan loop
}

// nearestKGuts dispatches one L2 row-range scan to the active tier.
func (b *Block) nearestKGuts(q Point, lo, hi int, h *nnheap.KHeap, sc *Scratch) {
	switch b.kern {
	case KernelScalar:
		b.scanScalar(q, lo, hi, h)
	case KernelF32:
		b.scanF32(q, lo, hi, h, sc)
	case KernelQuantized:
		b.scanQuant(q, lo, hi, h, sc)
	default:
		b.scanF64(q, lo, hi, h)
	}
}

// panelBytes sizes the row panels of the batched kernels: the filter-
// side bytes of one panel target the L1 working set so a panel stays
// cache-resident while every query of the batch sweeps it.
const panelBytes = 32 << 10

// panelRows returns how many rows of the active tier's filter
// representation fit one panel.
func (b *Block) panelRows() int {
	dim := b.Dim
	if dim < 1 {
		dim = 1
	}
	var per int
	switch b.kern {
	case KernelQuantized:
		per = dim // uint8 codes
	case KernelF32:
		per = 4 * dim
	default:
		per = 8 * dim
	}
	rows := panelBytes / per
	if rows < 1 {
		rows = 1
	}
	return rows
}

// NearestKBatch runs NearestK for every query of qs against the whole
// block, sweeping cache-sized row panels across all queries so each
// panel of S is loaded once per batch instead of once per query. Row
// order within each query is ascending exactly as in NearestK, so every
// heap retains bit-identical candidates to the sequential calls. It
// returns the total rows scanned (len(qs)·Len()).
func (b *Block) NearestKBatch(qs []Point, m Metric, hs []*nnheap.KHeap) int64 {
	if len(qs) != len(hs) {
		panic(fmt.Sprintf("vector: NearestKBatch: %d queries, %d heaps", len(qs), len(hs)))
	}
	n := b.Len()
	if n == 0 || len(qs) == 0 {
		return 0
	}
	if m != L2 || b.kern == KernelScalar {
		// Non-L2 metrics and the reference scalar tier keep the
		// unbatched per-query shape.
		var scanned int64
		for i, q := range qs {
			scanned += int64(b.NearestKRange(q, 0, n, m, hs[i]))
		}
		return scanned
	}
	b.checkQueryDims(qs)
	var sc Scratch
	pr := b.panelRows()
	for p := 0; p < n; p += pr {
		pEnd := p + pr
		if pEnd > n {
			pEnd = n
		}
		for i, q := range qs {
			b.nearestKGuts(q, p, pEnd, hs[i], &sc)
		}
	}
	return int64(len(qs)) * int64(n)
}

// NearestKBatchRanges is NearestKBatch with a per-query row window
// [lo[i], hi[i]) — the batched form of NearestKRange after per-query
// Theorem-2 windowing. Windows with lo[i] ≥ hi[i] scan nothing. The
// return value is the summed window sizes, matching what the sequential
// NearestKRange calls would have returned.
func (b *Block) NearestKBatchRanges(qs []Point, lo, hi []int, m Metric, hs []*nnheap.KHeap) int64 {
	if len(qs) != len(hs) || len(qs) != len(lo) || len(qs) != len(hi) {
		panic(fmt.Sprintf("vector: NearestKBatchRanges: mismatched lengths %d/%d/%d/%d",
			len(qs), len(lo), len(hi), len(hs)))
	}
	var scanned int64
	gLo, gHi := b.Len(), 0
	for i := range qs {
		if lo[i] >= hi[i] {
			continue
		}
		scanned += int64(hi[i] - lo[i])
		if lo[i] < gLo {
			gLo = lo[i]
		}
		if hi[i] > gHi {
			gHi = hi[i]
		}
	}
	if scanned == 0 {
		return 0
	}
	if m != L2 || b.kern == KernelScalar {
		for i, q := range qs {
			if lo[i] < hi[i] {
				b.NearestKRange(q, lo[i], hi[i], m, hs[i])
			}
		}
		return scanned
	}
	b.checkQueryDims(qs)
	var sc Scratch
	pr := b.panelRows()
	for p := gLo; p < gHi; p += pr {
		pEnd := p + pr
		if pEnd > gHi {
			pEnd = gHi
		}
		for i, q := range qs {
			r0, r1 := lo[i], hi[i]
			if r0 < p {
				r0 = p
			}
			if r1 > pEnd {
				r1 = pEnd
			}
			if r0 < r1 {
				b.nearestKGuts(q, r0, r1, hs[i], &sc)
			}
		}
	}
	return scanned
}

// rangeGuts dispatches one L2 range scan to the active tier: the filter
// tiers skip rows whose certified lower bound already exceeds theta (a
// row the exact test would also reject) and refine the rest exactly, so
// the appended candidates match the float64 path bit for bit.
func (b *Block) rangeGuts(q Point, lo, hi int, theta float64, dst []nnheap.Candidate, sc *Scratch) []nnheap.Candidate {
	dim := b.Dim
	ids := b.IDs[lo:hi] // window views: [i-lo] is provably in bounds
	switch b.kern {
	case KernelF32:
		q32, qErr := sc.f32Query(q)
		gamma := float64(dim+8) * 1.2e-7
		invG := (1 + 1e-9) / (1 - gamma)
		tBase := theta + qErr
		errs := b.errF32[lo:hi][:len(ids)]
		for o := range ids {
			// Chunk-advance shape for bounds-check elimination (see
			// sqDistL2); same accumulation order as before.
			i := lo + o
			row := b.coords32[i*dim : i*dim+len(q32)]
			qr := q32[:len(row)]
			var s0, s1, s2, s3 float32
			for len(row) >= 4 {
				qr = qr[:len(row)]
				d0 := row[0] - qr[0]
				d1 := row[1] - qr[1]
				d2 := row[2] - qr[2]
				d3 := row[3] - qr[3]
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
				row, qr = row[4:], qr[4:]
			}
			qr = qr[:len(row)]
			for j, v := range row {
				d := v - qr[j]
				s0 += d * d
			}
			sf := float64((s0 + s1) + (s2 + s3))
			// Sqrt-free pricing of the θ skip (see scanQuant): skip iff
			// √sf·(1−γ) − rowErr − qErr > θ, compared in squared space
			// with an up-padded threshold so the skip stays certified.
			if !math.IsInf(sf, 1) {
				t := (tBase + errs[o]) * invG
				if sf > t*t {
					continue
				}
			}
			s := sqDistL2(b.Coords[i*dim:i*dim+len(q)], q)
			if d := math.Sqrt(s); d <= theta { //lint:allow sqrtfree: range radius θ is in true units; one sqrt per window survivor at emit
				dst = append(dst, nnheap.Candidate{ID: ids[o], Dist: d})
			}
		}
	case KernelQuantized:
		stride := b.qStride
		cq, qErr := sc.quantQuery(q, b.qMin, b.qScale, stride)
		invQ := (1 + 1e-9) / (b.qScale * quantRelSlack)
		tBase := theta + qErr + b.qRecErr
		for p0 := lo; p0 < hi; p0 += quantChunkRows {
			p1 := min(p0+quantChunkRows, hi)
			isums := sc.isumBuf(p1 - p0)
			quantSqRows(b.codes[p0*stride:p1*stride], cq, stride, p1-p0, isums)
			pids := b.IDs[p0:p1]
			errs := b.errQ[p0:p1][:len(pids)]
			is := isums[:len(pids)]
			for o := range pids {
				// θ is fixed, so the sqrt-free threshold (see scanQuant)
				// needs only one add and two multiplies per row.
				t := (tBase + errs[o]) * invQ
				if float64(is[o]) > t*t {
					continue
				}
				i := p0 + o
				s := sqDistL2(b.Coords[i*dim:i*dim+len(q)], q)
				if d := math.Sqrt(s); d <= theta { //lint:allow sqrtfree: range radius θ is in true units; one sqrt per filter survivor at emit
					dst = append(dst, nnheap.Candidate{ID: pids[o], Dist: d})
				}
			}
		}
	default: // block and scalar tiers share the exact loop
		for o := range ids {
			i := lo + o
			s := sqDistL2(b.Coords[i*dim:i*dim+len(q)], q)
			if d := math.Sqrt(s); d <= theta { //lint:allow sqrtfree: range radius θ is in true units; one sqrt per window survivor at emit
				dst = append(dst, nnheap.Candidate{ID: ids[o], Dist: d})
			}
		}
	}
	return dst
}

// RangeToBatchRanges is RangeTo batched over queries with per-query row
// windows, sweeping cache-sized panels the way NearestKBatchRanges
// does. dsts[i] receives query i's candidates (appended in ascending
// row order, identical to a sequential RangeTo call) and the extended
// slices are written back in place. theta is shared by the batch — the
// callers batch rows of one R partition, which share θ_i.
func (b *Block) RangeToBatchRanges(qs []Point, lo, hi []int, m Metric, theta float64, dsts [][]nnheap.Candidate, scanned *int64) {
	if len(qs) != len(dsts) || len(qs) != len(lo) || len(qs) != len(hi) {
		panic(fmt.Sprintf("vector: RangeToBatchRanges: mismatched lengths %d/%d/%d/%d",
			len(qs), len(lo), len(hi), len(dsts)))
	}
	var total int64
	gLo, gHi := b.Len(), 0
	for i := range qs {
		if lo[i] >= hi[i] {
			continue
		}
		total += int64(hi[i] - lo[i])
		if lo[i] < gLo {
			gLo = lo[i]
		}
		if hi[i] > gHi {
			gHi = hi[i]
		}
	}
	if scanned != nil {
		*scanned += total
	}
	if total == 0 {
		return
	}
	if m != L2 {
		for i, q := range qs {
			dsts[i] = b.RangeTo(q, lo[i], hi[i], m, theta, dsts[i], nil)
		}
		return
	}
	b.checkQueryDims(qs)
	var sc Scratch
	pr := b.panelRows()
	for p := gLo; p < gHi; p += pr {
		pEnd := p + pr
		if pEnd > gHi {
			pEnd = gHi
		}
		for i, q := range qs {
			r0, r1 := lo[i], hi[i]
			if r0 < p {
				r0 = p
			}
			if r1 > pEnd {
				r1 = pEnd
			}
			if r0 < r1 {
				dsts[i] = b.rangeGuts(q, r0, r1, theta, dsts[i], &sc)
			}
		}
	}
}

// checkQueryDims panics on a query/block dimensionality mismatch — the
// internal-invariant form of the per-call check NearestKRange performs.
// Build sites validate dims when blocks are assembled (see
// driver.CollectRSBlocks and codec.AppendTaggedToBlock), so reaching
// this panic means a kernel was handed rows that never went through a
// validated build path.
func (b *Block) checkQueryDims(qs []Point) {
	for _, q := range qs {
		if len(q) != b.Dim {
			panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", b.Dim, len(q)))
		}
	}
}
