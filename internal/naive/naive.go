// Package naive provides the two reference join implementations the paper
// measures everything against conceptually:
//
//   - BruteForce: the centralized O(|R|·|S|) nested-loop kNN join. Every
//     distributed algorithm in this repository is verified against it.
//   - Broadcast: the "basic strategy" of §3 — R is split into N disjoint
//     subsets, the entire S is shipped to every reducer, shuffle cost
//     |R| + N·|S|. It is correct but expensive, which is the paper's
//     motivation for PGBJ.
package naive

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// BruteForce computes the exact kNN join of R and S on one machine with a
// parallel nested loop. It returns results ordered by R object ID and the
// number of distance computations performed.
func BruteForce(rObjs, sObjs []codec.Object, k int, m vector.Metric) ([]codec.Result, int64) {
	if k <= 0 || len(sObjs) == 0 {
		return nil, 0
	}
	out := make([]codec.Result, len(rObjs))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(rObjs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(rObjs) {
			break
		}
		hi := lo + chunk
		if hi > len(rObjs) {
			hi = len(rObjs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			heap := nnheap.NewKHeap(k)
			for i := lo; i < hi; i++ {
				heap.Reset()
				r := rObjs[i]
				for _, s := range sObjs {
					heap.Push(nnheap.Candidate{ID: s.ID, Dist: m.Dist(r.Point, s.Point)})
				}
				out[i] = codec.Result{RID: r.ID, Neighbors: toNeighbors(heap.Sorted())}
			}
		}(lo, hi)
	}
	wg.Wait()
	SortResults(out)
	return out, int64(len(rObjs)) * int64(len(sObjs))
}

// toNeighbors converts heap candidates into result neighbors.
func toNeighbors(cands []nnheap.Candidate) []codec.Neighbor {
	nbs := make([]codec.Neighbor, len(cands))
	for i, c := range cands {
		nbs[i] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
	}
	return nbs
}

// SortResults orders results by R object ID in place.
func SortResults(rs []codec.Result) { driver.SortResults(rs) }

// BroadcastOptions configures the basic strategy.
type BroadcastOptions struct {
	K      int
	Metric vector.Metric
	// Kernel selects the reduce-side distance scan tier (see
	// vector.Kernel); the zero value keeps the fused float64 kernels.
	Kernel vector.Kernel
}

// Broadcast runs the §3 basic strategy on the cluster: one MapReduce job
// where each r is routed to one of N reducers and every s is replicated to
// all N. Input files must contain Tagged records (see dataset.ToDFS); the
// output file holds codec.Result records.
func Broadcast(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts BroadcastOptions) (*stats.Report, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("naive: k must be positive, got %d", opts.K)
	}
	n := cluster.Nodes()
	report := &stats.Report{
		Algorithm: "basic",
		K:         opts.K,
		Nodes:     n,
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	job := broadcastKind.New(broadcastSpec{
		RFile:  rFile,
		SFile:  sFile,
		Output: outFile,
		Nodes:  n,
		Opts:   opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("KNN Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs = js.Counters["pairs"]
	report.ShuffleBytes = js.ShuffleBytes
	report.ShuffleRecords = js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan = js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()
	report.OutputPairs = js.OutputRecords * int64(opts.K)
	return report, nil
}

// broadcastSpec rebuilds the broadcast job in a worker process.
type broadcastSpec struct {
	RFile, SFile string
	Output       string
	Nodes        int
	Opts         BroadcastOptions
}

const (
	sideNodes = "nodes"
	sideOpts  = "opts"
)

var broadcastKind = mapreduce.DefineKind("broadcast-join", buildBroadcastJob)

func buildBroadcastJob(s broadcastSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "broadcast-join",
		Input:          []string{s.RFile, s.SFile},
		Output:         s.Output,
		NumReducers:    s.Nodes,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.RegionKeyGroupPrefix,
		Side: map[string]any{
			sideNodes: s.Nodes,
			sideOpts:  s.Opts,
		},
		Map:    broadcastMap,
		Reduce: broadcastReduce,
	}
}

// broadcastMap hashes each r to one reducer and replicates every s to
// all of them — the shuffle whose N·|S| term motivates PGBJ.
func broadcastMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	n := ctx.Side(sideNodes).(int)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	switch t.Src {
	case codec.FromR:
		emit(codec.RegionKey(int(((t.ID%int64(n))+int64(n))%int64(n)), t), rec)
	case codec.FromS:
		ctx.Counter("replicas_s", int64(n))
		for i := 0; i < n; i++ {
			emit(codec.RegionKey(i, t), rec)
		}
	}
	return nil
}

func broadcastReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side(sideOpts).(BroadcastOptions)
	rBlk, sBlk, err := driver.CollectRSBlocksKernel(values, opts.Kernel)
	if err != nil {
		return err
	}
	scanned := driver.JoinBlocksKNN(rBlk, sBlk, opts.K, opts.Metric, emit)
	ctx.Counter("pairs", scanned)
	ctx.AddWork(scanned)
	return nil
}

// ReadResults decodes a result file produced by any join job in this
// repository and returns the results sorted by R object ID.
func ReadResults(fs dfs.Store, name string) ([]codec.Result, error) {
	return driver.ReadResults(fs, name)
}
