package naive

import (
	"math"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/vector"
)

func TestBruteForceKnownAnswer(t *testing.T) {
	r := []codec.Object{{ID: 0, Point: vector.Point{0, 0}}}
	s := []codec.Object{
		{ID: 10, Point: vector.Point{1, 0}},
		{ID: 11, Point: vector.Point{0, 2}},
		{ID: 12, Point: vector.Point{3, 0}},
	}
	got, pairs := BruteForce(r, s, 2, vector.L2)
	if pairs != 3 {
		t.Fatalf("pairs = %d", pairs)
	}
	if len(got) != 1 || got[0].RID != 0 {
		t.Fatalf("got %+v", got)
	}
	nbs := got[0].Neighbors
	if len(nbs) != 2 || nbs[0].ID != 10 || nbs[0].Dist != 1 || nbs[1].ID != 11 || nbs[1].Dist != 2 {
		t.Fatalf("neighbors = %+v", nbs)
	}
}

func TestBruteForceSelfJoin(t *testing.T) {
	objs := dataset.Uniform(50, 3, 10, 1)
	got, _ := BruteForce(objs, objs, 1, vector.L2)
	for _, res := range got {
		// In a self-join every object's nearest neighbor is itself (d=0).
		if res.Neighbors[0].Dist != 0 {
			t.Fatalf("r %d nearest dist = %v, want 0", res.RID, res.Neighbors[0].Dist)
		}
	}
}

func TestBruteForceKLargerThanS(t *testing.T) {
	r := dataset.Uniform(10, 2, 10, 2)
	s := dataset.Uniform(3, 2, 10, 3)
	got, _ := BruteForce(r, s, 8, vector.L2)
	for _, res := range got {
		if len(res.Neighbors) != 3 {
			t.Fatalf("got %d neighbors, want all 3", len(res.Neighbors))
		}
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	objs := dataset.Uniform(5, 2, 10, 4)
	if got, pairs := BruteForce(objs, nil, 3, vector.L2); got != nil || pairs != 0 {
		t.Fatal("empty S should return nil")
	}
	if got, _ := BruteForce(objs, objs, 0, vector.L2); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got, _ := BruteForce(nil, objs, 3, vector.L2); len(got) != 0 {
		t.Fatal("empty R should return empty")
	}
}

func TestBruteForceResultsSortedByRID(t *testing.T) {
	r := dataset.Uniform(200, 2, 100, 5)
	// Shuffle R's order but keep IDs.
	r[0], r[199] = r[199], r[0]
	s := dataset.Uniform(100, 2, 100, 6)
	got, _ := BruteForce(r, s, 3, vector.L2)
	for i := 1; i < len(got); i++ {
		if got[i].RID < got[i-1].RID {
			t.Fatal("results not sorted by RID")
		}
	}
}

func TestBruteForceAlternateMetrics(t *testing.T) {
	r := []codec.Object{{ID: 0, Point: vector.Point{0, 0}}}
	s := []codec.Object{
		{ID: 1, Point: vector.Point{3, 3}}, // L2 4.24, L1 6, L∞ 3
		{ID: 2, Point: vector.Point{0, 5}}, // L2 5, L1 5, L∞ 5
	}
	got, _ := BruteForce(r, s, 1, vector.L1)
	if got[0].Neighbors[0].ID != 2 {
		t.Fatalf("L1 nearest = %d, want 2", got[0].Neighbors[0].ID)
	}
	got, _ = BruteForce(r, s, 1, vector.LInf)
	if got[0].Neighbors[0].ID != 1 {
		t.Fatalf("L∞ nearest = %d, want 1", got[0].Neighbors[0].ID)
	}
}

func runBroadcast(t *testing.T, rObjs, sObjs []codec.Object, k, nodes int) ([]codec.Result, *statsReport) {
	t.Helper()
	fs := dfs.New(64)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Broadcast(cluster, "R", "S", "out", BroadcastOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, &statsReport{rep.ShuffleRecords, rep.ReplicasS, rep.Pairs}
}

type statsReport struct {
	shuffleRecords, replicasS, pairs int64
}

func TestBroadcastMatchesBruteForce(t *testing.T) {
	rObjs := dataset.Uniform(300, 3, 100, 7)
	sObjs := dataset.Uniform(400, 3, 100, 8)
	k := 5
	got, _ := runBroadcast(t, rObjs, sObjs, k, 4)
	want, _ := BruteForce(rObjs, sObjs, k, vector.L2)
	assertSameResults(t, got, want)
}

func TestBroadcastShuffleCostFormula(t *testing.T) {
	// §3: basic strategy shuffles |R| + N·|S| records.
	rObjs := dataset.Uniform(100, 2, 50, 9)
	sObjs := dataset.Uniform(150, 2, 50, 10)
	nodes := 5
	_, rep := runBroadcast(t, rObjs, sObjs, 3, nodes)
	wantRecords := int64(100 + nodes*150)
	if rep.shuffleRecords != wantRecords {
		t.Fatalf("shuffle records = %d, want %d", rep.shuffleRecords, wantRecords)
	}
	if rep.replicasS != int64(nodes*150) {
		t.Fatalf("replicas = %d, want %d", rep.replicasS, nodes*150)
	}
	if rep.pairs != int64(100*150) {
		t.Fatalf("pairs = %d, want full cross product", rep.pairs)
	}
}

func TestBroadcastSingleNode(t *testing.T) {
	rObjs := dataset.Uniform(50, 2, 50, 11)
	sObjs := dataset.Uniform(60, 2, 50, 12)
	got, _ := runBroadcast(t, rObjs, sObjs, 4, 1)
	want, _ := BruteForce(rObjs, sObjs, 4, vector.L2)
	assertSameResults(t, got, want)
}

func TestBroadcastRejectsBadK(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := Broadcast(cluster, "R", "S", "out", BroadcastOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestReadResultsErrors(t *testing.T) {
	fs := dfs.New(0)
	if _, err := ReadResults(fs, "missing"); err == nil {
		t.Error("missing file accepted")
	}
	fs.Write("bad", []dfs.Record{[]byte("x")})
	if _, err := ReadResults(fs, "bad"); err == nil {
		t.Error("garbage accepted")
	}
}

// assertSameResults verifies two result sets agree by distance multiset —
// the correct equality for kNN joins, where equidistant neighbors may
// legally differ.
func assertSameResults(t *testing.T, got, want []codec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d: RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("r %d: %d neighbors, want %d", got[i].RID, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			gd, wd := got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist
			if math.Abs(gd-wd) > 1e-9 {
				t.Fatalf("r %d neighbor %d: dist %v, want %v", got[i].RID, j, gd, wd)
			}
		}
	}
}

func BenchmarkBruteForce(b *testing.B) {
	r := dataset.Forest(2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(r, r, 10, vector.L2)
	}
}
