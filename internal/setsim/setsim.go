// Package setsim implements the parallel set-similarity join of Vernica,
// Carey and Li (SIGMOD'10) — reference [16] of the paper, whose related
// work notes the technique answers a *different* problem than the kNN
// join ("due to the different problem definitions, it is not applicable
// to extend their techniques to solve our problem"). It is implemented
// here in full to make that §7 comparison runnable: same MapReduce
// engine, different join semantics — all record pairs whose Jaccard
// similarity reaches a threshold, rather than each record's k nearest.
//
// The three stages follow the paper's self-join pipeline:
//
//  1. Token ordering: one MapReduce job counts token frequencies; the
//     driver sorts tokens by ascending frequency (rarest first), which
//     minimizes prefix sizes in stage 2.
//  2. RID-pair generation: each record is projected onto its prefix —
//     the first |x| − ⌈t·|x|⌉ + 1 tokens in the global order, enough
//     that any two records with Jaccard ≥ t share a prefix token — and
//     routed to one reducer per prefix token. Reducers verify candidate
//     pairs (length filter, then exact Jaccard) and emit qualifying
//     pairs.
//  3. Deduplication: a pair that shares several prefix tokens is found
//     several times; a final job groups by canonical pair key and emits
//     each once.
package setsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/stats"
)

// Record is one set-valued object: an ID and its token set.
type Record struct {
	ID     int64
	Tokens []int32
}

// SimPair is one join result: two record IDs and their Jaccard similarity.
type SimPair struct {
	A, B int64
	Sim  float64
}

// Options configures a set-similarity self-join.
type Options struct {
	// Threshold is the Jaccard similarity bound, in (0, 1].
	Threshold float64
}

func (o Options) validate() error {
	if o.Threshold <= 0 || o.Threshold > 1 {
		return fmt.Errorf("setsim: threshold must be in (0, 1], got %g", o.Threshold)
	}
	return nil
}

// Jaccard returns |a∩b| / |a∪b| for two token sets sorted ascending.
func Jaccard(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	var inter int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// prefixLen is the prefix-filter length for a set of size n at threshold
// t: two sets with Jaccard ≥ t must share a token within their first
// n − ⌈t·n⌉ + 1 tokens under any common global order.
func prefixLen(n int, t float64) int {
	if n == 0 {
		return 0
	}
	p := n - int(math.Ceil(t*float64(n))) + 1
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// ---- wire format -----------------------------------------------------

// EncodeRecord returns the wire form of r.
func EncodeRecord(r Record) []byte {
	dst := make([]byte, 0, 12+4*len(r.Tokens))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.ID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Tokens)))
	for _, tok := range r.Tokens {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(tok))
	}
	return dst
}

// DecodeRecord parses a Record produced by EncodeRecord.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < 12 {
		return Record{}, fmt.Errorf("setsim: record truncated: %d bytes", len(b))
	}
	r := Record{ID: int64(binary.LittleEndian.Uint64(b))}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if n < 0 || len(b) < 12+4*n {
		return Record{}, fmt.Errorf("setsim: record truncated: n=%d, have %d bytes", n, len(b))
	}
	r.Tokens = make([]int32, n)
	for i := 0; i < n; i++ {
		r.Tokens[i] = int32(binary.LittleEndian.Uint32(b[12+4*i:]))
	}
	return r, nil
}

// EncodeSimPair returns the wire form of p.
func EncodeSimPair(p SimPair) []byte {
	dst := make([]byte, 0, 24)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.A))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.B))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Sim))
}

// DecodeSimPair parses a SimPair produced by EncodeSimPair.
func DecodeSimPair(b []byte) (SimPair, error) {
	if len(b) < 24 {
		return SimPair{}, fmt.Errorf("setsim: pair truncated: %d bytes", len(b))
	}
	return SimPair{
		A:   int64(binary.LittleEndian.Uint64(b)),
		B:   int64(binary.LittleEndian.Uint64(b[8:])),
		Sim: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

// ToDFS writes records to the cluster's file system, reporting the
// store's write error (nil for the in-memory store).
func ToDFS(fs dfs.Store, name string, records []Record) error {
	recs := make([]dfs.Record, len(records))
	for i, r := range records {
		recs[i] = EncodeRecord(r)
	}
	return fs.Write(name, recs)
}

// Run executes the self-join on the cluster: every unordered record pair
// with Jaccard ≥ opts.Threshold. inFile must hold records written by
// ToDFS; outFile receives one EncodeSimPair per qualifying pair with
// A < B. The returned pairs are sorted by (A, B).
func Run(cluster *mapreduce.Cluster, inFile, outFile string, opts Options) ([]SimPair, *stats.Report, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	report := &stats.Report{
		Algorithm: "set-similarity",
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(inFile),
		SSize:     cluster.FS().Size(inFile),
	}

	// ---- Stage 1: token ordering ----------------------------------------
	countFile := outFile + ".tokencount"
	countJob := &mapreduce.Job{
		Name:   "setsim-token-count",
		Input:  []string{inFile},
		Output: countFile,
		Map: func(_ *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
			r, err := DecodeRecord(rec)
			if err != nil {
				return err
			}
			for _, tok := range r.Tokens {
				emit(codec.Uint32Key(uint32(tok)), []byte{1})
			}
			return nil
		},
		Combine: sumCounts,
		Reduce:  sumCounts,
	}
	start := time.Now()
	js, err := cluster.Run(countJob)
	if err != nil {
		return nil, nil, err
	}
	driver.AddJobStats(report, js)
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan

	rankOf, err := tokenRanks(cluster.FS(), countFile)
	cluster.FS().Remove(countFile)
	if err != nil {
		return nil, nil, err
	}
	report.AddPhase("Token Ordering", time.Since(start))

	// ---- Stage 2: RID-pair generation ------------------------------------
	pairFile := outFile + ".pairs"
	pairJob := &mapreduce.Job{
		Name:   "setsim-rid-pairs",
		Input:  []string{inFile},
		Output: pairFile,
		Side:   map[string]any{"ranks": rankOf, "opts": opts},
		Map: func(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
			rankOf := ctx.Side("ranks").(map[int32]int32)
			opts := ctx.Side("opts").(Options)
			r, err := DecodeRecord(rec)
			if err != nil {
				return err
			}
			// Re-express the token set in global-rank space, rarest first;
			// verification downstream is plain Jaccard, which any bijective
			// re-tokenization preserves.
			ranked := make([]int32, len(r.Tokens))
			for i, tok := range r.Tokens {
				ranked[i] = rankOf[tok]
			}
			sort.Slice(ranked, func(a, b int) bool { return ranked[a] < ranked[b] })
			wire := EncodeRecord(Record{ID: r.ID, Tokens: ranked})
			for _, tok := range ranked[:prefixLen(len(ranked), opts.Threshold)] {
				emit(codec.Uint32Key(uint32(tok)), wire)
				ctx.Counter("prefix_replicas", 1)
			}
			return nil
		},
		Reduce: verifyReduce,
	}
	start = time.Now()
	js, err = cluster.Run(pairJob)
	if err != nil {
		return nil, nil, err
	}
	report.AddPhase("RID-Pair Generation", time.Since(start))
	driver.AddJobStatsCounter(report, js, "verified")
	report.Pairs += js.Counters["verified"]
	report.ReplicasS = js.Counters["prefix_replicas"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	// ---- Stage 3: deduplication ------------------------------------------
	dedupJob := &mapreduce.Job{
		Name:   "setsim-dedup",
		Input:  []string{pairFile},
		Output: outFile,
		Map: func(_ *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
			p, err := DecodeSimPair(rec)
			if err != nil {
				return err
			}
			key := codec.AppendInt64Key(codec.Int64Key(p.A), p.B)
			emit(key, rec)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
			v, _ := values.Next()
			emit(nil, v)
			ctx.Counter("result_pairs", 1)
			return nil
		},
	}
	start = time.Now()
	ms, err := cluster.Run(dedupJob)
	cluster.FS().Remove(pairFile)
	if err != nil {
		return nil, nil, err
	}
	report.AddPhase("Deduplication", time.Since(start))
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.Counters["result_pairs"]

	pairs, err := ReadPairs(cluster.FS(), outFile)
	if err != nil {
		return nil, nil, err
	}
	return pairs, report, nil
}

// sumCounts folds token occurrence counts; it serves as both combiner
// and reducer of stage 1.
func sumCounts(_ *mapreduce.TaskContext, key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	var total uint64
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		if len(v) == 1 {
			total += uint64(v[0]) // raw map emission
			continue
		}
		total += binary.LittleEndian.Uint64(v[4:]) // combined [token|count] record
	}
	out := make([]byte, 12)
	binary.LittleEndian.PutUint32(out, codec.KeyUint32(key))
	binary.LittleEndian.PutUint64(out[4:], total)
	emit(key, out)
	return nil
}

// tokenRanks reads stage 1's output and assigns each token its rank in
// ascending frequency order (ties by token for determinism).
func tokenRanks(fs dfs.Store, name string) (map[int32]int32, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	type tokCount struct {
		tok   int32
		count uint64
	}
	counts := make([]tokCount, len(recs))
	for i, rec := range recs {
		if len(rec) < 12 {
			return nil, fmt.Errorf("setsim: token count record truncated")
		}
		counts[i] = tokCount{
			tok:   int32(binary.LittleEndian.Uint32(rec)),
			count: binary.LittleEndian.Uint64(rec[4:]),
		}
	}
	sort.Slice(counts, func(a, b int) bool {
		if counts[a].count != counts[b].count {
			return counts[a].count < counts[b].count
		}
		return counts[a].tok < counts[b].tok
	})
	ranks := make(map[int32]int32, len(counts))
	for i, tc := range counts {
		ranks[tc.tok] = int32(i)
	}
	return ranks, nil
}

// verifyReduce handles one prefix-token group: every record pair in it is
// a candidate; the length filter drops hopeless pairs before the exact
// Jaccard verification. Only the group of the pair's FIRST shared prefix
// token could emit it, but re-deriving that is costlier than stage 3's
// dedup, which Vernica et al. choose too.
func verifyReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	opts := ctx.Side("opts").(Options)
	t := opts.Threshold
	var recs []Record
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		r, err := DecodeRecord(v)
		if err != nil {
			return err
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	var verified int64
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			a, b := recs[i], recs[j]
			if a.ID == b.ID {
				continue
			}
			// Length filter: Jaccard ≥ t requires t·|a| ≤ |b| ≤ |a|/t.
			la, lb := float64(len(a.Tokens)), float64(len(b.Tokens))
			if lb < t*la || la < t*lb {
				continue
			}
			verified++
			if sim := Jaccard(a.Tokens, b.Tokens); sim >= t {
				emit(nil, EncodeSimPair(SimPair{A: a.ID, B: b.ID, Sim: sim}))
			}
		}
	}
	ctx.Counter("verified", verified)
	ctx.AddWork(verified)
	return nil
}

// ReadPairs decodes a pair file written by Run, sorted by (A, B).
func ReadPairs(fs dfs.Store, name string) ([]SimPair, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]SimPair, len(recs))
	for i, rec := range recs {
		p, err := DecodeSimPair(rec)
		if err != nil {
			return nil, fmt.Errorf("setsim: pair record %d: %w", i, err)
		}
		out[i] = p
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].A != out[b].A {
			return out[a].A < out[b].A
		}
		return out[a].B < out[b].B
	})
	return out, nil
}

// BruteForce computes the exact self-join centrally for verification.
// Token sets need not be sorted. Pairs are returned with A < B, sorted.
func BruteForce(records []Record, threshold float64) []SimPair {
	sorted := make([][]int32, len(records))
	for i, r := range records {
		cp := append([]int32(nil), r.Tokens...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		sorted[i] = cp
	}
	var out []SimPair
	for i := 0; i < len(records); i++ {
		for j := i + 1; j < len(records); j++ {
			if records[i].ID == records[j].ID {
				continue
			}
			if sim := Jaccard(sorted[i], sorted[j]); sim >= threshold {
				a, b := records[i].ID, records[j].ID
				if a > b {
					a, b = b, a
				}
				out = append(out, SimPair{A: a, B: b, Sim: sim})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].A != out[b].A {
			return out[a].A < out[b].A
		}
		return out[a].B < out[b].B
	})
	return out
}

// Baskets generates n market-basket records: token frequencies follow a
// Zipf-like law over a vocabulary, set sizes are uniform in [minLen,
// maxLen], and a fraction of records are near-duplicates of an earlier
// record (one token swapped) so joins at high thresholds have hits.
func Baskets(n, vocab, minLen, maxLen int, dupFrac float64, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(vocab-1))
	out := make([]Record, 0, n)
	draw := func() Record {
		size := minLen + rng.Intn(maxLen-minLen+1)
		seen := make(map[int32]bool, size)
		toks := make([]int32, 0, size)
		for len(toks) < size {
			tok := int32(zipf.Uint64())
			if !seen[tok] {
				seen[tok] = true
				toks = append(toks, tok)
			}
		}
		return Record{ID: int64(len(out)), Tokens: toks}
	}
	fresh := int32(vocab) // outside the Zipf vocabulary, unique per use
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < dupFrac {
			src := out[rng.Intn(len(out))]
			toks := append([]int32(nil), src.Tokens...)
			toks[rng.Intn(len(toks))] = fresh
			fresh++
			out = append(out, Record{ID: int64(len(out)), Tokens: toks})
			continue
		}
		out = append(out, draw())
	}
	return out
}
