package setsim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
)

func runJoin(t testing.TB, records []Record, threshold float64, nodes int) ([]SimPair, int64) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	ToDFS(fs, "in", records)
	pairs, rep, err := Run(cluster, "in", "out", Options{Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	// Per-job actuals contract: three jobs, comparison counts summing to
	// the aggregate (only the RID-pair job verifies candidates).
	if len(rep.Jobs) != 3 {
		t.Fatalf("recorded %d jobs, want 3", len(rep.Jobs))
	}
	var comps int64
	for _, j := range rep.Jobs {
		comps += j.DistComps
	}
	if comps != rep.Pairs {
		t.Fatalf("per-job comparisons %d != aggregate %d", comps, rep.Pairs)
	}
	return pairs, rep.Pairs
}

func samePairs(t *testing.T, got, want []SimPair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].A != want[i].A || got[i].B != want[i].B {
			t.Fatalf("pair %d: (%d,%d), want (%d,%d)", i, got[i].A, got[i].B, want[i].A, want[i].B)
		}
		if math.Abs(got[i].Sim-want[i].Sim) > 1e-12 {
			t.Fatalf("pair %d: sim %v, want %v", i, got[i].Sim, want[i].Sim)
		}
	}
}

func TestExactVsBruteForce(t *testing.T) {
	records := Baskets(800, 500, 4, 12, 0.3, 1)
	for _, th := range []float64{0.5, 0.7, 0.8, 0.95} {
		want := BruteForce(records, th)
		got, _ := runJoin(t, records, th, 4)
		samePairs(t, got, want)
	}
	if len(BruteForce(records, 0.8)) == 0 {
		t.Fatal("workload has no qualifying pairs at 0.8 — test is vacuous")
	}
}

func TestExactAcrossClusterShapes(t *testing.T) {
	records := Baskets(500, 300, 3, 10, 0.25, 2)
	want := BruteForce(records, 0.7)
	for _, nodes := range []int{1, 3, 16} {
		got, _ := runJoin(t, records, 0.7, nodes)
		samePairs(t, got, want)
	}
}

func TestPrefixFilterPrunes(t *testing.T) {
	records := Baskets(2000, 2000, 5, 15, 0.1, 3)
	_, verified := runJoin(t, records, 0.8, 4)
	cross := int64(len(records)) * int64(len(records)-1) / 2
	if verified >= cross/4 {
		t.Fatalf("verified %d of %d pairs — prefix filter ineffective", verified, cross)
	}
}

func TestThresholdOne(t *testing.T) {
	records := []Record{
		{ID: 0, Tokens: []int32{1, 2, 3}},
		{ID: 1, Tokens: []int32{3, 2, 1}}, // same set, different order
		{ID: 2, Tokens: []int32{1, 2, 4}},
	}
	got, _ := runJoin(t, records, 1, 2)
	if len(got) != 1 || got[0].A != 0 || got[0].B != 1 || got[0].Sim != 1 {
		t.Fatalf("threshold-1 join = %+v, want exactly the identical pair (0,1)", got)
	}
}

func TestValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	for _, th := range []float64{0, -0.5, 1.01} {
		if _, _, err := Run(cluster, "in", "out", Options{Threshold: th}); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
	if _, _, err := Run(cluster, "missing", "out", Options{Threshold: 0.5}); err == nil {
		t.Error("missing input accepted")
	}
}

// Property: Jaccard is symmetric, bounded to [0,1], 1 on identical sets,
// and matches a map-based reference implementation.
func TestJaccardQuick(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := dedupSorted(aRaw)
		b := dedupSorted(bRaw)
		j := Jaccard(a, b)
		if j < 0 || j > 1 {
			return false
		}
		if Jaccard(b, a) != j {
			return false
		}
		if Jaccard(a, a) != 1 {
			return false
		}
		// Reference with maps.
		set := make(map[int32]bool)
		for _, x := range a {
			set[x] = true
		}
		inter := 0
		for _, x := range b {
			if set[x] {
				inter++
			}
		}
		union := len(a) + len(b) - inter
		want := 1.0
		if union > 0 {
			want = float64(inter) / float64(union)
		}
		return j == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func dedupSorted(raw []uint8) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, x := range raw {
		if !seen[int32(x)] {
			seen[int32(x)] = true
			out = append(out, int32(x))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Property: the prefix length always admits at least one token, never
// more than the set, and shrinks as the threshold grows.
func TestPrefixLenQuick(t *testing.T) {
	f := func(nRaw uint8, tRaw uint8) bool {
		n := int(nRaw%50) + 1
		tlo := float64(tRaw%90+10) / 100 // 0.10 .. 0.99
		p := prefixLen(n, tlo)
		if p < 1 || p > n {
			return false
		}
		return prefixLen(n, 1) <= p // stricter threshold, shorter prefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if prefixLen(0, 0.5) != 0 {
		t.Error("empty set prefix must be 0")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	r := Record{ID: -7, Tokens: []int32{5, 1, 9}}
	back, err := DecodeRecord(EncodeRecord(r))
	if err != nil || back.ID != r.ID || len(back.Tokens) != 3 {
		t.Fatalf("record round trip: %+v, %v", back, err)
	}
	for i := range r.Tokens {
		if back.Tokens[i] != r.Tokens[i] {
			t.Fatal("token mismatch")
		}
	}
	p := SimPair{A: 1, B: 2, Sim: 0.75}
	pb, err := DecodeSimPair(EncodeSimPair(p))
	if err != nil || pb != p {
		t.Fatalf("pair round trip: %+v, %v", pb, err)
	}
	if _, err := DecodeRecord([]byte{1}); err == nil {
		t.Error("truncated record accepted")
	}
	if _, err := DecodeSimPair([]byte{1, 2}); err == nil {
		t.Error("truncated pair accepted")
	}
}

func TestBasketsShape(t *testing.T) {
	records := Baskets(300, 100, 4, 8, 0.2, 4)
	if len(records) != 300 {
		t.Fatalf("got %d records", len(records))
	}
	for _, r := range records {
		if len(r.Tokens) < 4 || len(r.Tokens) > 8 {
			t.Fatalf("record %d has %d tokens, want 4..8", r.ID, len(r.Tokens))
		}
		seen := make(map[int32]bool)
		for _, tok := range r.Tokens {
			if seen[tok] {
				t.Fatalf("record %d repeats token %d", r.ID, tok)
			}
			seen[tok] = true
		}
	}
}

func BenchmarkSetSimJoin(b *testing.B) {
	records := Baskets(20000, 5000, 5, 15, 0.2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(0)
		cluster := mapreduce.NewCluster(fs, 8)
		ToDFS(fs, "in", records)
		if _, _, err := Run(cluster, "in", "out", Options{Threshold: 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}
