// Package voronoi implements the Voronoi-diagram-based partitioning of
// §2.3 and §4 of the paper: nearest-pivot assignment, the per-partition
// summary tables TR and TS built by the first MapReduce job, and the
// distance bounds of Theorems 1–5 / Corollaries 1–2 that drive all pruning.
package voronoi

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// Partitioner assigns objects to generalized Voronoi cells defined by a
// pivot set, and caches the pivot-pivot distance matrix every bound needs.
type Partitioner struct {
	Pivots []vector.Point
	Metric vector.Metric

	pivotDist [][]float64 // pivotDist[i][j] = |p_i, p_j|
}

// NewPartitioner builds a partitioner over the given pivots. It
// precomputes the |P|×|P| pivot distance matrix (the paper's mappers load
// the pivots into memory in the same way).
func NewPartitioner(pivots []vector.Point, metric vector.Metric) *Partitioner {
	if len(pivots) == 0 {
		panic("voronoi: empty pivot set")
	}
	pd := make([][]float64, len(pivots))
	for i := range pd {
		pd[i] = make([]float64, len(pivots))
	}
	for i := 0; i < len(pivots); i++ {
		for j := i + 1; j < len(pivots); j++ {
			d := metric.Dist(pivots[i], pivots[j])
			pd[i][j], pd[j][i] = d, d
		}
	}
	return &Partitioner{Pivots: pivots, Metric: metric, pivotDist: pd}
}

// NumPartitions returns |P|.
func (p *Partitioner) NumPartitions() int { return len(p.Pivots) }

// PivotDist returns the cached distance |p_i, p_j|.
func (p *Partitioner) PivotDist(i, j int) float64 { return p.pivotDist[i][j] }

// Assign returns the index of the pivot closest to pt and the distance to
// it. Distance ties break to the lower pivot index, which is the
// deterministic stand-in for the paper's footnote-1 rule ("assign to the
// partition with the smallest number of objects"): a distributed mapper
// cannot see global partition sizes, so any deterministic rule serves; the
// correctness of the join never depends on tie placement.
//
// The caller is charged len(Pivots) distance computations; pass a non-nil
// distCount to accumulate them for selectivity accounting.
func (p *Partitioner) Assign(pt vector.Point, distCount *int64) (int, float64) {
	best, bestD := 0, p.Metric.Dist(pt, p.Pivots[0])
	for i := 1; i < len(p.Pivots); i++ {
		if d := p.Metric.Dist(pt, p.Pivots[i]); d < bestD {
			best, bestD = i, d
		}
	}
	if distCount != nil {
		*distCount += int64(len(p.Pivots))
	}
	return best, bestD
}

// RSummary is one row of table TR (Figure 3): statistics of one partition
// of R.
type RSummary struct {
	Count int     // number of objects in P_i^R
	L     float64 // min distance from an object of P_i^R to its pivot
	U     float64 // max distance from an object of P_i^R to its pivot
}

// SSummary is one row of table TS: statistics of one partition of S plus
// the distances from the pivot to its k nearest partition members
// (p_i.d_1 … p_i.d_k in the paper), kept in ascending order.
type SSummary struct {
	Count  int
	L, U   float64
	KDists []float64
}

// Summary holds both summary tables, the byproduct of MapReduce job 1 that
// the second job's mappers and reducers consume.
type Summary struct {
	K int
	R []RSummary
	S []SSummary
}

// SummaryBuilder accumulates summary rows incrementally; each map task
// feeds it locally and partial builders merge on the driver, mirroring how
// the paper collects statistics per input split and merges at job end.
type SummaryBuilder struct {
	k     int
	r     []RSummary
	s     []SSummary
	sHeap []*nnheap.KHeap // k smallest |s, pivot| per S-partition
}

// NewSummaryBuilder prepares a builder for numPartitions partitions and
// the given k.
func NewSummaryBuilder(numPartitions, k int) *SummaryBuilder {
	if numPartitions <= 0 || k <= 0 {
		panic("voronoi: NewSummaryBuilder needs positive numPartitions and k")
	}
	b := &SummaryBuilder{
		k:     k,
		r:     make([]RSummary, numPartitions),
		s:     make([]SSummary, numPartitions),
		sHeap: make([]*nnheap.KHeap, numPartitions),
	}
	for i := range b.r {
		b.r[i] = RSummary{L: math.Inf(1), U: math.Inf(-1)}
		b.s[i] = SSummary{L: math.Inf(1), U: math.Inf(-1)}
	}
	return b
}

// Add records one partitioned object.
func (b *SummaryBuilder) Add(t codec.Tagged) {
	i := int(t.Partition)
	switch t.Src {
	case codec.FromR:
		row := &b.r[i]
		row.Count++
		row.L = math.Min(row.L, t.PivotDist)
		row.U = math.Max(row.U, t.PivotDist)
	case codec.FromS:
		row := &b.s[i]
		row.Count++
		row.L = math.Min(row.L, t.PivotDist)
		row.U = math.Max(row.U, t.PivotDist)
		if b.sHeap[i] == nil {
			b.sHeap[i] = nnheap.NewKHeap(b.k)
		}
		b.sHeap[i].Push(nnheap.Candidate{ID: t.ID, Dist: t.PivotDist})
	default:
		panic(fmt.Sprintf("voronoi: bad source %q", t.Src))
	}
}

// Merge folds another builder (same shape) into b.
func (b *SummaryBuilder) Merge(o *SummaryBuilder) {
	if len(b.r) != len(o.r) || b.k != o.k {
		panic("voronoi: merging incompatible summary builders")
	}
	for i := range b.r {
		b.r[i].Count += o.r[i].Count
		b.r[i].L = math.Min(b.r[i].L, o.r[i].L)
		b.r[i].U = math.Max(b.r[i].U, o.r[i].U)
		b.s[i].Count += o.s[i].Count
		b.s[i].L = math.Min(b.s[i].L, o.s[i].L)
		b.s[i].U = math.Max(b.s[i].U, o.s[i].U)
		if o.sHeap[i] != nil {
			if b.sHeap[i] == nil {
				b.sHeap[i] = nnheap.NewKHeap(b.k)
			}
			for _, c := range o.sHeap[i].Sorted() {
				b.sHeap[i].Push(c)
			}
		}
	}
}

// Finalize freezes the builder into a Summary. Ascending KDists order is
// what lets Algorithm 1 early-exit (§4.3.1).
func (b *SummaryBuilder) Finalize() *Summary {
	sum := &Summary{K: b.k, R: append([]RSummary(nil), b.r...), S: append([]SSummary(nil), b.s...)}
	for i := range sum.S {
		if b.sHeap[i] == nil {
			continue
		}
		cands := b.sHeap[i].Sorted()
		ds := make([]float64, len(cands))
		for j, c := range cands {
			ds[j] = c.Dist
		}
		sum.S[i].KDists = ds
	}
	return sum
}

// HyperplaneDist implements Theorem 1: a lower bound on the distance from
// the query to any object of the candidate cell, derived from the
// generalized hyperplane between the query's pivot and the cell's pivot.
//
// In Algorithm 3's usage the roles are: the query r lives in partition i
// and the candidate partition is j, so callers pass distToOwn=|r,p_i|,
// distToOther=|r,p_j| and the pivot gap |p_i,p_j|. A non-positive result
// means the bound prunes nothing.
//
// Under L2 the exact hyperplane distance (|r,p_j|² − |r,p_i|²)/(2|p_i,p_j|)
// of Theorem 1 applies. Bisectors of other metrics are not hyperplanes and
// that formula can over-prune, so for L1/L∞ the metric-space-safe bound
// (|r,p_j| − |r,p_i|)/2 is used instead (it follows from two triangle
// inequalities and holds in any metric space).
func HyperplaneDist(distToOther, distToOwn, pivotGap float64, m vector.Metric) float64 {
	if m == vector.L2 {
		if pivotGap == 0 {
			return 0
		}
		return (distToOther*distToOther - distToOwn*distToOwn) / (2 * pivotGap)
	}
	return (distToOther - distToOwn) / 2
}

// UpperBound implements Theorem 3: ub(s, P_i^R) = U(P_i^R) + |p_i,p_j| +
// |p_j,s| bounds the distance from s ∈ P_j^S to every r ∈ P_i^R from above.
func UpperBound(uR, pivotGap, sPivotDist float64) float64 {
	return uR + pivotGap + sPivotDist
}

// LowerBound implements Theorem 4: lb(s, P_i^R) = max{0, |p_i,p_j| −
// U(P_i^R) − |p_j,s|} bounds the same distance from below.
func LowerBound(uR, pivotGap, sPivotDist float64) float64 {
	lb := pivotGap - uR - sPivotDist
	if lb < 0 {
		return 0
	}
	return lb
}

// BoundKNN implements Algorithm 1: the kNN-distance bound θ_i shared by
// every object of R-partition i, computed only from the summary tables.
// It returns +Inf when S carries fewer than k objects in total (the paper
// assumes k ≤ |S|; the +Inf keeps callers safe rather than wrong).
func (sum *Summary) BoundKNN(partR int, pp *Partitioner) float64 {
	uR := sum.R[partR].U
	if sum.R[partR].Count == 0 {
		return 0 // no objects to bound; callers skip empty partitions
	}
	pq := nnheap.NewKHeap(sum.K)
	for j := range sum.S {
		gap := pp.PivotDist(partR, j)
		for _, d := range sum.S[j].KDists { // ascending
			ub := UpperBound(uR, gap, d)
			if pq.Full() && ub >= pq.Top().Dist {
				break // no later entry of this partition can improve θ
			}
			pq.Push(nnheap.Candidate{Dist: ub})
		}
	}
	if !pq.Full() {
		return math.Inf(1)
	}
	return pq.Top().Dist
}

// LBReplica implements Corollary 2's threshold LB(P_j^S, P_i^R) =
// |p_i,p_j| − U(P_i^R) − θ_i: an object s ∈ P_j^S must be replicated to
// partition i's reducer iff |s,p_j| ≥ LBReplica.
func LBReplica(pivotGap, uR, theta float64) float64 {
	return pivotGap - uR - theta
}

// Theorem2Window returns the pivot-distance window of Theorem 2 for a
// query at distance rPivotDist from S-partition j's pivot with search
// radius theta: only objects s of the partition with |p_j,s| inside
// [lo, hi] can satisfy |r,s| ≤ theta. ok is false when the window is empty
// and the whole partition can be skipped.
func Theorem2Window(sRow SSummary, rPivotDist, theta float64) (lo, hi float64, ok bool) {
	lo = math.Max(sRow.L, rPivotDist-theta)
	hi = math.Min(sRow.U, rPivotDist+theta)
	return lo, hi, lo <= hi
}

// Partition splits objects into per-pivot groups, tagging each object, and
// returns the tagged groups. It is the sequential (single-node) equivalent
// of MapReduce job 1 and is used by tests, tools and the centralized
// verification paths; the distributed path lives in package pgbj.
func (p *Partitioner) Partition(objs []codec.Object, src codec.Source, distCount *int64) [][]codec.Tagged {
	groups := make([][]codec.Tagged, len(p.Pivots))
	for _, o := range objs {
		part, d := p.Assign(o.Point, distCount)
		groups[part] = append(groups[part], codec.Tagged{
			Object: o, Src: src, Partition: int32(part), PivotDist: d,
		})
	}
	return groups
}

// SortByPivotDist orders a partition's objects by ascending pivot
// distance. Reducers keep S-partitions in this order so Theorem 2's window
// becomes two binary searches.
func SortByPivotDist(objs []codec.Tagged) {
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].PivotDist != objs[j].PivotDist {
			return objs[i].PivotDist < objs[j].PivotDist
		}
		return objs[i].ID < objs[j].ID
	})
}

// WindowIndices returns the half-open index range [from, to) of objs —
// which must be sorted by SortByPivotDist — whose PivotDist lies in
// [lo, hi].
func WindowIndices(objs []codec.Tagged, lo, hi float64) (from, to int) {
	from = sort.Search(len(objs), func(i int) bool { return objs[i].PivotDist >= lo })
	to = sort.Search(len(objs), func(i int) bool { return objs[i].PivotDist > hi })
	return from, to
}
