package voronoi

import (
	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

// RangeSelect implements Definition 3 over partitioned data: it returns
// every object within distance theta of q, using the two pruning rules
// the paper derives for range selection — Corollary 1 (whole-partition
// hyperplane pruning) and Theorem 2 (pivot-distance windows).
//
// partitions must be the Voronoi cells produced by Partition (each sorted
// with SortByPivotDist), and sum their summary. distCount, when non-nil,
// accrues the distance computations performed (object–pivot probes and
// object–object verifications).
func (p *Partitioner) RangeSelect(partitions [][]codec.Tagged, sum *Summary, q vector.Point, theta float64, distCount *int64) []codec.Tagged {
	count := func(n int64) {
		if distCount != nil {
			*distCount += n
		}
	}
	qPart, qDist := p.Assign(q, distCount)
	var out []codec.Tagged
	for j, part := range partitions {
		if len(part) == 0 {
			continue
		}
		qToPj := qDist
		if j != qPart {
			qToPj = p.Metric.Dist(q, p.Pivots[j])
			count(1)
			if HyperplaneDist(qToPj, qDist, p.PivotDist(qPart, j), p.Metric) > theta {
				continue
			}
		}
		lo, hi, ok := Theorem2Window(sum.S[j], qToPj, theta)
		if !ok {
			continue
		}
		from, to := WindowIndices(part, lo, hi)
		for x := from; x < to; x++ {
			count(1)
			if p.Metric.Dist(q, part[x].Point) <= theta {
				out = append(out, part[x])
			}
		}
	}
	return out
}
