package voronoi

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

// rangeFixture partitions a random S with a summary, sorted for windows.
func rangeFixture(seed int64, n, nPivots, dim int, metric vector.Metric) (*Partitioner, [][]codec.Tagged, *Summary, []codec.Object) {
	rng := rand.New(rand.NewSource(seed))
	objs := randObjects(rng, n, dim, 100)
	pivots := randPivots(rng, nPivots, dim, 100)
	pp := NewPartitioner(pivots, metric)
	parts := pp.Partition(objs, codec.FromS, nil)
	b := NewSummaryBuilder(nPivots, 2)
	for _, g := range parts {
		for _, o := range g {
			b.Add(o)
		}
		SortByPivotDist(g)
	}
	return pp, parts, b.Finalize(), objs
}

func idsWithin(objs []codec.Object, q vector.Point, theta float64, m vector.Metric) []int64 {
	var out []int64
	for _, o := range objs {
		if m.Dist(q, o.Point) <= theta {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestRangeSelectMatchesLinearScan(t *testing.T) {
	pp, parts, sum, objs := rangeFixture(1, 500, 8, 3, vector.L2)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		q := randObjects(rng, 1, 3, 100)[0].Point
		theta := rng.Float64() * 50
		got := pp.RangeSelect(parts, sum, q, theta, nil)
		gotIDs := make([]int64, len(got))
		for i, g := range got {
			gotIDs[i] = g.ID
		}
		sort.Slice(gotIDs, func(a, b int) bool { return gotIDs[a] < gotIDs[b] })
		want := idsWithin(objs, q, theta, vector.L2)
		if len(gotIDs) != len(want) {
			t.Fatalf("trial %d θ=%v: %d results, want %d", trial, theta, len(gotIDs), len(want))
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("trial %d: result %d = %d, want %d", trial, i, gotIDs[i], want[i])
			}
		}
	}
}

func TestRangeSelectAlternateMetrics(t *testing.T) {
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		pp, parts, sum, objs := rangeFixture(3, 300, 6, 2, m)
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 40; trial++ {
			q := randObjects(rng, 1, 2, 100)[0].Point
			theta := rng.Float64() * 60
			got := pp.RangeSelect(parts, sum, q, theta, nil)
			if len(got) != len(idsWithin(objs, q, theta, m)) {
				t.Fatalf("%v trial %d: wrong result size", m, trial)
			}
		}
	}
}

func TestRangeSelectZeroRadius(t *testing.T) {
	pp, parts, sum, objs := rangeFixture(5, 200, 5, 2, vector.L2)
	// θ=0 finds exactly the objects at the query point.
	q := objs[17].Point
	got := pp.RangeSelect(parts, sum, q, 0, nil)
	found := false
	for _, g := range got {
		if g.ID == 17 {
			found = true
		}
		if vector.Dist(q, g.Point) != 0 {
			t.Fatalf("θ=0 returned object at distance %v", vector.Dist(q, g.Point))
		}
	}
	if !found {
		t.Fatal("θ=0 missed the object at the query point")
	}
}

func TestRangeSelectCountsDistances(t *testing.T) {
	pp, parts, sum, _ := rangeFixture(6, 400, 8, 3, vector.L2)
	var n int64
	pp.RangeSelect(parts, sum, vector.Point{50, 50, 50}, 20, &n)
	if n <= 0 {
		t.Fatal("no distances counted")
	}
	// Pruning should beat a full scan plus pivot probes.
	if n >= 400+8 {
		t.Fatalf("RangeSelect computed %d distances — no pruning over linear scan", n)
	}
}

// Property: RangeSelect equals linear scan for arbitrary shapes, radii
// and metrics.
func TestRangeSelectQuick(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, thetaRaw uint8, metricRaw bool) bool {
		n := int(nRaw)%150 + 1
		np := int(pRaw)%8 + 1
		theta := float64(thetaRaw)
		m := vector.L2
		if metricRaw {
			m = vector.L1
		}
		pp, parts, sum, objs := rangeFixture(seed, n, np, 2, m)
		rng := rand.New(rand.NewSource(seed + 1))
		q := randObjects(rng, 1, 2, 100)[0].Point
		got := pp.RangeSelect(parts, sum, q, theta, nil)
		return len(got) == len(idsWithin(objs, q, theta, m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRangeSelect(b *testing.B) {
	pp, parts, sum, _ := rangeFixture(7, 50000, 200, 4, vector.L2)
	q := vector.Point{50, 50, 50, 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.RangeSelect(parts, sum, q, 10, nil)
	}
}
