package voronoi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/vector"
)

func randObjects(rng *rand.Rand, n, dim int, scale float64) []codec.Object {
	out := make([]codec.Object, n)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * scale
		}
		out[i] = codec.Object{ID: int64(i), Point: p}
	}
	return out
}

func randPivots(rng *rand.Rand, n, dim int, scale float64) []vector.Point {
	out := make([]vector.Point, n)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * scale
		}
		out[i] = p
	}
	return out
}

func TestAssignIsNearestPivot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pivots := randPivots(rng, 12, 3, 100)
	pp := NewPartitioner(pivots, vector.L2)
	for i := 0; i < 300; i++ {
		pt := randObjects(rng, 1, 3, 100)[0].Point
		got, gotD := pp.Assign(pt, nil)
		best, bestD := -1, math.Inf(1)
		for j, pv := range pivots {
			if d := vector.Dist(pt, pv); d < bestD {
				best, bestD = j, d
			}
		}
		if got != best || math.Abs(gotD-bestD) > 1e-12 {
			t.Fatalf("Assign = (%d,%v), want (%d,%v)", got, gotD, best, bestD)
		}
	}
}

func TestAssignTieBreaksLow(t *testing.T) {
	// Two identical pivots: ties must go to the lower index.
	pv := vector.Point{1, 1}
	pp := NewPartitioner([]vector.Point{pv.Clone(), pv.Clone()}, vector.L2)
	got, _ := pp.Assign(vector.Point{5, 5}, nil)
	if got != 0 {
		t.Fatalf("tie assigned to %d, want 0", got)
	}
}

func TestAssignCountsDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pp := NewPartitioner(randPivots(rng, 7, 2, 10), vector.L2)
	var n int64
	pp.Assign(vector.Point{1, 2}, &n)
	if n != 7 {
		t.Fatalf("distCount = %d, want 7", n)
	}
}

func TestPivotDistMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pivots := randPivots(rng, 6, 4, 50)
	pp := NewPartitioner(pivots, vector.L2)
	for i := range pivots {
		for j := range pivots {
			want := vector.Dist(pivots[i], pivots[j])
			if got := pp.PivotDist(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("PivotDist(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestNewPartitionerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPartitioner(nil, vector.L2)
}

func buildSummary(t *testing.T, pp *Partitioner, rObjs, sObjs []codec.Object, k int) (*Summary, [][]codec.Tagged, [][]codec.Tagged) {
	t.Helper()
	rParts := pp.Partition(rObjs, codec.FromR, nil)
	sParts := pp.Partition(sObjs, codec.FromS, nil)
	b := NewSummaryBuilder(pp.NumPartitions(), k)
	for _, g := range rParts {
		for _, o := range g {
			b.Add(o)
		}
	}
	for _, g := range sParts {
		for _, o := range g {
			b.Add(o)
		}
	}
	return b.Finalize(), rParts, sParts
}

func TestSummaryTables(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pivots := randPivots(rng, 5, 3, 100)
	pp := NewPartitioner(pivots, vector.L2)
	rObjs := randObjects(rng, 200, 3, 100)
	sObjs := randObjects(rng, 300, 3, 100)
	k := 4
	sum, rParts, sParts := buildSummary(t, pp, rObjs, sObjs, k)

	totalR, totalS := 0, 0
	for i := range pivots {
		totalR += sum.R[i].Count
		totalS += sum.S[i].Count
		if sum.R[i].Count != len(rParts[i]) || sum.S[i].Count != len(sParts[i]) {
			t.Fatalf("partition %d: counts disagree with partition contents", i)
		}
		// L/U must match the true min/max pivot distance.
		if len(rParts[i]) > 0 {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, o := range rParts[i] {
				lo, hi = math.Min(lo, o.PivotDist), math.Max(hi, o.PivotDist)
			}
			if math.Abs(sum.R[i].L-lo) > 1e-12 || math.Abs(sum.R[i].U-hi) > 1e-12 {
				t.Fatalf("partition %d: TR L/U = (%v,%v), want (%v,%v)", i, sum.R[i].L, sum.R[i].U, lo, hi)
			}
		}
		// KDists must be the k smallest pivot distances, ascending.
		if len(sParts[i]) > 0 {
			var ds []float64
			for _, o := range sParts[i] {
				ds = append(ds, o.PivotDist)
			}
			SortByPivotDist(sParts[i])
			want := min(k, len(ds))
			if len(sum.S[i].KDists) != want {
				t.Fatalf("partition %d: %d KDists, want %d", i, len(sum.S[i].KDists), want)
			}
			for j, d := range sum.S[i].KDists {
				if math.Abs(d-sParts[i][j].PivotDist) > 1e-12 {
					t.Fatalf("partition %d KDists[%d] = %v, want %v", i, j, d, sParts[i][j].PivotDist)
				}
				if j > 0 && d < sum.S[i].KDists[j-1] {
					t.Fatalf("partition %d KDists not ascending", i)
				}
			}
		}
	}
	if totalR != len(rObjs) || totalS != len(sObjs) {
		t.Fatalf("objects lost: R %d/%d, S %d/%d", totalR, len(rObjs), totalS, len(sObjs))
	}
}

func TestSummaryBuilderMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pivots := randPivots(rng, 4, 2, 50)
	pp := NewPartitioner(pivots, vector.L2)
	objs := randObjects(rng, 100, 2, 50)
	k := 3

	// One builder sees everything.
	whole := NewSummaryBuilder(4, k)
	var tagged []codec.Tagged
	for _, o := range objs {
		part, d := pp.Assign(o.Point, nil)
		src := codec.FromR
		if o.ID%2 == 0 {
			src = codec.FromS
		}
		tg := codec.Tagged{Object: o, Src: src, Partition: int32(part), PivotDist: d}
		tagged = append(tagged, tg)
		whole.Add(tg)
	}
	// Two builders split the stream, then merge.
	a, b := NewSummaryBuilder(4, k), NewSummaryBuilder(4, k)
	for i, tg := range tagged {
		if i%3 == 0 {
			a.Add(tg)
		} else {
			b.Add(tg)
		}
	}
	a.Merge(b)

	got, want := a.Finalize(), whole.Finalize()
	for i := range want.R {
		if got.R[i] != want.R[i] {
			t.Fatalf("R[%d]: %+v vs %+v", i, got.R[i], want.R[i])
		}
		if got.S[i].Count != want.S[i].Count || got.S[i].L != want.S[i].L || got.S[i].U != want.S[i].U {
			t.Fatalf("S[%d]: %+v vs %+v", i, got.S[i], want.S[i])
		}
		if len(got.S[i].KDists) != len(want.S[i].KDists) {
			t.Fatalf("S[%d]: KDists length %d vs %d", i, len(got.S[i].KDists), len(want.S[i].KDists))
		}
		for j := range want.S[i].KDists {
			if got.S[i].KDists[j] != want.S[i].KDists[j] {
				t.Fatalf("S[%d].KDists[%d]: %v vs %v", i, j, got.S[i].KDists[j], want.S[i].KDists[j])
			}
		}
	}
}

func TestSummaryBuilderPanics(t *testing.T) {
	mustPanic(t, func() { NewSummaryBuilder(0, 1) })
	mustPanic(t, func() { NewSummaryBuilder(1, 0) })
	mustPanic(t, func() {
		NewSummaryBuilder(2, 1).Merge(NewSummaryBuilder(3, 1))
	})
	mustPanic(t, func() {
		NewSummaryBuilder(2, 1).Add(codec.Tagged{Src: 'X'})
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// Theorems 3 & 4: the bounds bracket every true pair distance.
func TestUpperLowerBoundsBracketTrueDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pivots := randPivots(rng, 6, 3, 100)
	pp := NewPartitioner(pivots, vector.L2)
	rObjs := randObjects(rng, 150, 3, 100)
	sObjs := randObjects(rng, 150, 3, 100)
	sum, rParts, sParts := buildSummary(t, pp, rObjs, sObjs, 3)

	for i, rp := range rParts {
		if len(rp) == 0 {
			continue
		}
		for j, spart := range sParts {
			gap := pp.PivotDist(i, j)
			for _, s := range spart {
				ub := UpperBound(sum.R[i].U, gap, s.PivotDist)
				lb := LowerBound(sum.R[i].U, gap, s.PivotDist)
				if lb < 0 {
					t.Fatalf("negative lower bound %v", lb)
				}
				for _, r := range rp {
					d := vector.Dist(r.Point, s.Point)
					if d > ub+1e-9 || d < lb-1e-9 {
						t.Fatalf("bounds violated: lb=%v d=%v ub=%v (r part %d, s part %d)", lb, d, ub, j, i)
					}
				}
			}
		}
	}
}

// Algorithm 1: θ_i upper-bounds the true kNN distance of every r in P_i^R.
func TestBoundKNNIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pivots := randPivots(rng, 8, 3, 100)
	pp := NewPartitioner(pivots, vector.L2)
	rObjs := randObjects(rng, 120, 3, 100)
	sObjs := randObjects(rng, 200, 3, 100)
	k := 5
	sum, rParts, _ := buildSummary(t, pp, rObjs, sObjs, k)

	for i, rp := range rParts {
		if len(rp) == 0 {
			continue
		}
		theta := sum.BoundKNN(i, pp)
		for _, r := range rp {
			// True k-th nearest neighbor distance by brute force.
			ds := make([]float64, len(sObjs))
			for x, s := range sObjs {
				ds[x] = vector.Dist(r.Point, s.Point)
			}
			kth := kthSmallest(ds, k)
			if kth > theta+1e-9 {
				t.Fatalf("θ_%d = %v < true kNN dist %v for r %d", i, theta, kth, r.ID)
			}
		}
	}
}

func kthSmallest(ds []float64, k int) float64 {
	cp := append([]float64(nil), ds...)
	// Simple selection: sort is fine at test scale.
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[min] {
				min = j
			}
		}
		cp[i], cp[min] = cp[min], cp[i]
	}
	return cp[k-1]
}

func TestBoundKNNUnderflow(t *testing.T) {
	// Fewer than k objects in S ⇒ +Inf (safe, not wrong).
	pp := NewPartitioner([]vector.Point{{0, 0}}, vector.L2)
	b := NewSummaryBuilder(1, 5)
	b.Add(codec.Tagged{Object: codec.Object{ID: 1, Point: vector.Point{1, 0}}, Src: codec.FromR, Partition: 0, PivotDist: 1})
	b.Add(codec.Tagged{Object: codec.Object{ID: 2, Point: vector.Point{0, 1}}, Src: codec.FromS, Partition: 0, PivotDist: 1})
	sum := b.Finalize()
	if got := sum.BoundKNN(0, pp); !math.IsInf(got, 1) {
		t.Fatalf("BoundKNN with |S|<k = %v, want +Inf", got)
	}
}

func TestBoundKNNEmptyRPartition(t *testing.T) {
	pp := NewPartitioner([]vector.Point{{0, 0}, {100, 100}}, vector.L2)
	b := NewSummaryBuilder(2, 1)
	b.Add(codec.Tagged{Object: codec.Object{ID: 1, Point: vector.Point{1, 0}}, Src: codec.FromS, Partition: 0, PivotDist: 1})
	sum := b.Finalize()
	if got := sum.BoundKNN(1, pp); got != 0 {
		t.Fatalf("BoundKNN of empty R partition = %v, want 0", got)
	}
}

// Corollary 2 via LBReplica: dropping s whenever |s,p_j| < LB(P_j^S,P_i^R)
// never drops a true k nearest neighbor of any r ∈ P_i^R.
func TestLBReplicaNeverDropsTrueNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pivots := randPivots(rng, 6, 2, 100)
	pp := NewPartitioner(pivots, vector.L2)
	rObjs := randObjects(rng, 100, 2, 100)
	sObjs := randObjects(rng, 160, 2, 100)
	k := 4
	sum, rParts, sParts := buildSummary(t, pp, rObjs, sObjs, k)

	for i, rp := range rParts {
		if len(rp) == 0 {
			continue
		}
		theta := sum.BoundKNN(i, pp)
		// The replica set S_i per Corollary 2.
		kept := make(map[int64]bool)
		for j, spart := range sParts {
			lb := LBReplica(pp.PivotDist(i, j), sum.R[i].U, theta)
			for _, s := range spart {
				if s.PivotDist >= lb {
					kept[s.ID] = true
				}
			}
		}
		// Every r's true kNN must be inside the replica set.
		for _, r := range rp {
			type cand struct {
				id int64
				d  float64
			}
			cands := make([]cand, len(sObjs))
			for x, s := range sObjs {
				cands[x] = cand{s.ID, vector.Dist(r.Point, s.Point)}
			}
			for a := 0; a < k; a++ {
				min := a
				for b := a + 1; b < len(cands); b++ {
					if cands[b].d < cands[min].d {
						min = b
					}
				}
				cands[a], cands[min] = cands[min], cands[a]
				if !kept[cands[a].id] {
					t.Fatalf("true neighbor %d of r %d (d=%v) was pruned from S_%d",
						cands[a].id, r.ID, cands[a].d, i)
				}
			}
		}
	}
}

// Corollary 1: partitions pruned by the hyperplane rule contain no object
// within θ of the query.
func TestHyperplanePruningIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pivots := randPivots(rng, 7, 2, 100)
	pp := NewPartitioner(pivots, vector.L2)
	objs := randObjects(rng, 400, 2, 100)
	parts := pp.Partition(objs, codec.FromS, nil)

	for trial := 0; trial < 100; trial++ {
		q := randObjects(rng, 1, 2, 100)[0].Point
		qPart, qDist := pp.Assign(q, nil)
		theta := rng.Float64() * 30
		for j, part := range parts {
			if j == qPart {
				continue
			}
			dHP := HyperplaneDist(vector.Dist(q, pivots[j]), qDist, pp.PivotDist(qPart, j), vector.L2)
			if dHP > theta {
				for _, o := range part {
					if vector.Dist(q, o.Point) <= theta {
						t.Fatalf("hyperplane pruning dropped object %d at dist %v ≤ θ=%v",
							o.ID, vector.Dist(q, o.Point), theta)
					}
				}
			}
		}
	}
}

// Theorem 2: the pivot-distance window never excludes an object within θ.
func TestTheorem2WindowIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pivots := randPivots(rng, 5, 3, 100)
	pp := NewPartitioner(pivots, vector.L2)
	objs := randObjects(rng, 300, 3, 100)
	parts := pp.Partition(objs, codec.FromS, nil)
	b := NewSummaryBuilder(5, 2)
	for _, g := range parts {
		for _, o := range g {
			b.Add(o)
		}
	}
	sum := b.Finalize()

	for trial := 0; trial < 100; trial++ {
		q := randObjects(rng, 1, 3, 100)[0].Point
		theta := rng.Float64() * 40
		for j, part := range parts {
			if len(part) == 0 {
				continue
			}
			rPivotDist := vector.Dist(q, pivots[j])
			lo, hi, ok := Theorem2Window(sum.S[j], rPivotDist, theta)
			for _, o := range part {
				if vector.Dist(q, o.Point) <= theta {
					if !ok || o.PivotDist < lo-1e-12 || o.PivotDist > hi+1e-12 {
						t.Fatalf("Theorem 2 window [%v,%v] ok=%v excludes object %d within θ", lo, hi, ok, o.ID)
					}
				}
			}
		}
	}
}

func TestWindowIndicesMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objs := make([]codec.Tagged, 60)
	for i := range objs {
		objs[i] = codec.Tagged{Object: codec.Object{ID: int64(i)}, PivotDist: rng.Float64() * 10}
	}
	SortByPivotDist(objs)
	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64() * 12
		hi := lo + rng.Float64()*5 - 1 // sometimes empty
		from, to := WindowIndices(objs, lo, hi)
		for i, o := range objs {
			inWindow := o.PivotDist >= lo && o.PivotDist <= hi
			inRange := i >= from && i < to
			if inWindow != inRange {
				t.Fatalf("WindowIndices([%v,%v]) wrong at index %d (d=%v): window=%v range=%v",
					lo, hi, i, o.PivotDist, inWindow, inRange)
			}
		}
	}
}

func TestSortByPivotDistStableTies(t *testing.T) {
	objs := []codec.Tagged{
		{Object: codec.Object{ID: 5}, PivotDist: 1},
		{Object: codec.Object{ID: 2}, PivotDist: 1},
		{Object: codec.Object{ID: 9}, PivotDist: 0.5},
	}
	SortByPivotDist(objs)
	if objs[0].ID != 9 || objs[1].ID != 2 || objs[2].ID != 5 {
		t.Fatalf("order = %v %v %v", objs[0].ID, objs[1].ID, objs[2].ID)
	}
}

func TestHyperplaneDistZeroGap(t *testing.T) {
	if got := HyperplaneDist(3, 4, 0, vector.L2); got != 0 {
		t.Fatalf("zero pivot gap → %v, want 0", got)
	}
}

// Property (quick): for random configurations, lb ≤ ub always, and both
// react monotonically to U(P_i^R) as Theorems 3/4 dictate.
func TestBoundMonotonicityQuick(t *testing.T) {
	f := func(uRraw, gapRaw, sdRaw, bumpRaw float64) bool {
		abs := func(v float64) float64 {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e6)
		}
		uR, gap, sd, bump := abs(uRraw), abs(gapRaw), abs(sdRaw), abs(bumpRaw)
		lb, ub := LowerBound(uR, gap, sd), UpperBound(uR, gap, sd)
		if lb > ub {
			return false
		}
		// Growing U grows ub and shrinks lb (never below 0).
		if UpperBound(uR+bump, gap, sd) < ub {
			return false
		}
		return LowerBound(uR+bump, gap, sd) <= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property (quick): partitioning objects never loses any and each object
// lands in its nearest pivot's cell.
func TestPartitionLosslessQuick(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, np := int(nRaw)%80+1, int(pRaw)%6+1
		pivots := randPivots(rng, np, 2, 50)
		pp := NewPartitioner(pivots, vector.L2)
		objs := randObjects(rng, n, 2, 50)
		parts := pp.Partition(objs, codec.FromR, nil)
		total := 0
		for i, g := range parts {
			total += len(g)
			for _, o := range g {
				for j := range pivots {
					if vector.Dist(o.Point, pivots[j]) < o.PivotDist-1e-12 {
						return false
					}
					_ = j
				}
				if int(o.Partition) != i {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAssign(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pp := NewPartitioner(randPivots(rng, 400, 10, 100), vector.L2)
	pt := randObjects(rng, 1, 10, 100)[0].Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.Assign(pt, nil)
	}
}

func BenchmarkBoundKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pivots := randPivots(rng, 200, 10, 100)
	pp := NewPartitioner(pivots, vector.L2)
	rObjs := randObjects(rng, 2000, 10, 100)
	sObjs := randObjects(rng, 2000, 10, 100)
	bld := NewSummaryBuilder(200, 10)
	for _, g := range pp.Partition(rObjs, codec.FromR, nil) {
		for _, o := range g {
			bld.Add(o)
		}
	}
	for _, g := range pp.Partition(sObjs, codec.FromS, nil) {
		for _, o := range g {
			bld.Add(o)
		}
	}
	sum := bld.Finalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.BoundKNN(i%200, pp)
	}
}
