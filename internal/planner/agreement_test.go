package planner_test

import (
	"testing"

	"knnjoin"
	"knnjoin/internal/dataset"
	"knnjoin/internal/planner"
)

// TestPredictionsMatchMeasuredReplication checks the sampled Theorem-7
// estimate against the real pipeline: across a pivot sweep, predicted
// S-replication must land within tolerance of the measured actual and
// preserve its ordering. This is the falsifiability contract: the model
// is code, the pipeline is the experiment.
func TestPredictionsMatchMeasuredReplication(t *testing.T) {
	objs := dataset.Uniform(4000, 4, 100, 1)
	opts := planner.Options{K: 5, Nodes: 16, Seed: 1}
	ds, err := planner.Measure(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		pivots              int
		predicted, measured int64
	}
	var pts []point
	for _, p := range []int{16, 64, 256} {
		pinned := opts
		pinned.NumPivots = p
		plans, err := planner.Plans(ds, pinned)
		if err != nil {
			t.Fatal(err)
		}
		var pred int64 = -1
		for _, pl := range plans {
			if pl.Algo == "pgbj" && pl.PivotStrategy.String() == "random" && pl.GroupStrategy.String() == "geometric" {
				pred = pl.Predicted.ReplicasS
				break
			}
		}
		if pred < 0 {
			t.Fatalf("no pgbj random/geometric candidate at pivots=%d", p)
		}
		_, st, err := knnjoin.Join(objs, objs, knnjoin.Options{
			K: 5, Algorithm: knnjoin.PGBJ, Nodes: 16, NumPivots: p, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{p, pred, st.ReplicasS})
		ratio := float64(pred) / float64(st.ReplicasS)
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("pivots=%d: predicted replicas %d vs measured %d (ratio %.2f outside [0.75, 1.35])",
				p, pred, st.ReplicasS, ratio)
		}
	}
	for i := 1; i < len(pts); i++ {
		predDown := pts[i].predicted <= pts[i-1].predicted
		measDown := pts[i].measured <= pts[i-1].measured
		if predDown != measDown {
			t.Errorf("pivots %d → %d: predicted direction (down=%v) disagrees with measured (down=%v)",
				pts[i-1].pivots, pts[i].pivots, predDown, measDown)
		}
	}
}

// TestRankingAgreesWithMeasuredCost sweeps seeds and checks that the
// ranking's strong preferences are real: whenever the model scores one
// exact algorithm at least 1.8× cheaper than another, the measured
// deterministic cost proxy (shuffle bytes plus distance computations,
// priced at the model's own weights) must not order them the other way
// by more than 25%. Wall clocks stay out of it so the test cannot
// flake.
func TestRankingAgreesWithMeasuredCost(t *testing.T) {
	algos := []knnjoin.Algorithm{knnjoin.PGBJ, knnjoin.HBRJ, knnjoin.Broadcast, knnjoin.Theta}
	for _, seed := range []int64{1, 2, 3} {
		objs := dataset.Gaussian(1500, 4, 6, 0, 100, seed)
		opts := planner.Options{K: 8, Nodes: 4, Seed: seed}
		ds, err := planner.Measure(objs, objs, opts)
		if err != nil {
			t.Fatal(err)
		}
		plans, err := planner.Plans(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		bestScore := map[string]float64{}
		for _, p := range plans {
			if _, ok := bestScore[p.Algo]; !ok {
				bestScore[p.Algo] = p.Score
			}
		}
		measured := map[string]float64{}
		for _, a := range algos {
			_, st, err := knnjoin.Join(objs, objs, knnjoin.Options{
				K: 8, Algorithm: a, Nodes: 4, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			// The same cost collapse the score uses, fed with actuals
			// (fused-kernel distance pricing at dims=4 plus the shuffle
			// byte rate — mirror the cost.go weights).
			measured[a.String()] = float64(st.Pairs)*14 + float64(st.ShuffleBytes)*20
		}
		for i, a := range algos {
			for _, b := range algos[i+1:] {
				sa, sb := bestScore[a.String()], bestScore[b.String()]
				ma, mb := measured[a.String()], measured[b.String()]
				if sa < sb/1.8 && ma > mb*1.25 {
					t.Errorf("seed %d: model prefers %s (%.3g) over %s (%.3g) but measured cost says %0.f vs %0.f",
						seed, a, sa, b, sb, ma, mb)
				}
				if sb < sa/1.8 && mb > ma*1.25 {
					t.Errorf("seed %d: model prefers %s (%.3g) over %s (%.3g) but measured cost says %0.f vs %0.f",
						seed, b, sb, a, sa, mb, ma)
				}
			}
		}
	}
}
