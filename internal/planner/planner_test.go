package planner

import (
	"math"
	"math/rand"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
)

func TestReservoirDeterministicAndInRange(t *testing.T) {
	objs := dataset.Uniform(10000, 2, 100, 1)
	a := SampleObjects(objs, 100, 7)
	b := SampleObjects(objs, 100, 7)
	c := SampleObjects(objs, 100, 8)
	if len(a) != 100 {
		t.Fatalf("sample size %d, want 100", len(a))
	}
	same := func(x, y []codec.Object) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].ID != y[i].ID {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different samples")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
	seen := map[int64]bool{}
	var sum float64
	for _, o := range a {
		if seen[o.ID] {
			t.Fatalf("duplicate sampled ID %d", o.ID)
		}
		seen[o.ID] = true
		if o.ID < 0 || o.ID >= 10000 {
			t.Fatalf("sampled ID %d out of range", o.ID)
		}
		sum += float64(o.ID)
	}
	// Uniformity sanity: the mean sampled ID of a uniform draw from
	// 0..9999 concentrates near 5000 (σ of the mean ≈ 290).
	if mean := sum / 100; mean < 3500 || mean > 6500 {
		t.Fatalf("sample mean ID %.0f suggests bias", mean)
	}
}

func TestReservoirShortInput(t *testing.T) {
	objs := dataset.Uniform(10, 2, 100, 1)
	got := SampleObjects(objs, 100, 1)
	if len(got) != 10 {
		t.Fatalf("sample of a short input has %d objects, want all 10", len(got))
	}
}

func TestSampleStore(t *testing.T) {
	fs := dfs.New(64)
	objs := dataset.Uniform(1000, 3, 100, 2)
	if err := dataset.ToDFS(fs, "R", objs, codec.FromR); err != nil {
		t.Fatal(err)
	}
	sample, total, err := SampleStore(fs, "R", 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1000 {
		t.Fatalf("total %d, want 1000", total)
	}
	if len(sample) != 128 {
		t.Fatalf("sample size %d, want 128", len(sample))
	}
	again, _, err := SampleStore(fs, "R", 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sample {
		if sample[i].ID != again[i].ID {
			t.Fatal("SampleStore is not deterministic per seed")
		}
	}
	if _, _, err := SampleStore(fs, "missing", 10, 1); err == nil {
		t.Fatal("sampling a missing file succeeded")
	}
}

func TestMeasureDetectsShape(t *testing.T) {
	opts := Options{K: 10, Seed: 1}
	uniform, err := Measure(dataset.Uniform(4000, 8, 100, 1), dataset.Uniform(4000, 8, 100, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := Measure(dataset.Zipf(4000, 2, 64, 100, 1), dataset.Zipf(4000, 2, 64, 100, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if zipf.ClusterSkew <= uniform.ClusterSkew {
		t.Errorf("zipf skew %.2f not above uniform skew %.2f", zipf.ClusterSkew, uniform.ClusterSkew)
	}
	// Uniform noise in 8 dims has intrinsic dimensionality near 8.
	if uniform.IntrinsicDim < 4 {
		t.Errorf("uniform 8-d intrinsic dim %.1f implausibly low", uniform.IntrinsicDim)
	}
	// A 1-d manifold embedded in 8 dims must score near 1. Positions are
	// random along the line (the two-NN estimator assumes a locally
	// Poisson sample; a perfectly regular grid degenerates it).
	rng := rand.New(rand.NewSource(4))
	line := make([]codec.Object, 3000)
	for i := range line {
		p := make(vector.Point, 8)
		tt := rng.Float64()
		for d := range p {
			p[d] = tt * float64(d+1) * 10
		}
		line[i] = codec.Object{ID: int64(i), Point: p}
	}
	ml, err := Measure(line, line, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ml.IntrinsicDim > 3 {
		t.Errorf("line-embedded intrinsic dim %.1f, want near 1", ml.IntrinsicDim)
	}
	if ml.IntrinsicDim >= uniform.IntrinsicDim {
		t.Errorf("line intrinsic dim %.1f not below uniform %.1f", ml.IntrinsicDim, uniform.IntrinsicDim)
	}
}

// pgbjPlanAt evaluates one PGBJ candidate with pinned knobs.
func pgbjPlanAt(t *testing.T, ds *DataStats, opts Options, numPivots int) Plan {
	t.Helper()
	opts = opts.withDefaults()
	st, err := buildPivotState(ds, opts, numPivots, pivot.Random)
	if err != nil {
		t.Fatal(err)
	}
	p, err := costPGBJ(ds, opts, st, pgbj.Geometric)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCostMonotonicityPivots pins the Figure-7 pivot-count trade-off as
// it manifests in this pipeline (and as the measured sweep in
// agreement_test.go confirms): growing the pivot count tightens the
// per-reducer pruning (window-dominated regime: fewer reduce-side comps)
// and tightens θ, so Theorem-7 replication does not rise — while the
// partition phase pays |R∪S|·|P| assignment distances, so *total*
// compute eventually climbs.
func TestCostMonotonicityPivots(t *testing.T) {
	objs := dataset.Uniform(4000, 4, 100, 1)
	opts := Options{K: 5, Nodes: 16, Seed: 1}
	ds, err := Measure(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	grid := []int{16, 64, 256}
	plans := make([]Plan, len(grid))
	for i, p := range grid {
		plans[i] = pgbjPlanAt(t, ds, opts, p)
	}
	// Pruning effect: the window-dominated step must cut reduce-side
	// compute substantially.
	if a, b := plans[0].Predicted.MaxReducerComps, plans[1].Predicted.MaxReducerComps; b >= a {
		t.Errorf("pivots 16 → 64: per-reducer comps %d → %d (want tighter pruning)", a, b)
	}
	for i := 1; i < len(plans); i++ {
		// θ effect: replication never rises with more pivots at a fixed
		// group count.
		if plans[i].Predicted.ReplicasS > plans[i-1].Predicted.ReplicasS {
			t.Errorf("pivots %d → %d: replication rose %d → %d",
				grid[i-1], grid[i],
				plans[i-1].Predicted.ReplicasS, plans[i].Predicted.ReplicasS)
		}
	}
	// Assignment effect: at large |P| the partition phase dominates total
	// compute.
	if a, b := plans[0].Predicted.DistComps, plans[2].Predicted.DistComps; b <= a {
		t.Errorf("pivots 16 → 256: total comps %d → %d (want the |R∪S|·|P| climb)", a, b)
	}
}

// TestCostMonotonicityK pins the Theorem-2 geometry: a larger k loosens
// θ, widening every pruning window — so predicted replication and
// distance computations must not shrink as k grows.
func TestCostMonotonicityK(t *testing.T) {
	objs := dataset.Uniform(4000, 4, 100, 1)
	var prev *Plan
	prevK := 0
	for _, k := range []int{1, 8, 32} {
		opts := Options{K: k, Nodes: 8, Seed: 1}
		ds, err := Measure(objs, objs, opts)
		if err != nil {
			t.Fatal(err)
		}
		p := pgbjPlanAt(t, ds, opts, 64)
		if prev != nil {
			if p.Predicted.ReplicasS < prev.Predicted.ReplicasS {
				t.Errorf("k %d → %d: replication fell %d → %d",
					prevK, k, prev.Predicted.ReplicasS, p.Predicted.ReplicasS)
			}
			if p.Predicted.DistComps < prev.Predicted.DistComps {
				t.Errorf("k %d → %d: dist comps fell %d → %d",
					prevK, k, prev.Predicted.DistComps, p.Predicted.DistComps)
			}
		}
		prev, prevK = &p, k
	}
}

func TestSpillPressureRaisesScore(t *testing.T) {
	objs := dataset.Uniform(3000, 4, 100, 1)
	free := Options{K: 10, Nodes: 4, Seed: 1}
	tight := free
	tight.MemLimit = 64 << 10
	dsFree, err := Measure(objs, objs, free)
	if err != nil {
		t.Fatal(err)
	}
	a := pgbjPlanAt(t, dsFree, free, 64)
	b := pgbjPlanAt(t, dsFree, tight, 64)
	if a.Predicted.SpillBytes != 0 {
		t.Errorf("unlimited memory predicted %d spill bytes", a.Predicted.SpillBytes)
	}
	if b.Predicted.SpillBytes == 0 {
		t.Error("64KiB budget predicted no spill for a MiB-scale shuffle")
	}
	if b.Score <= a.Score {
		t.Errorf("spill pressure did not raise the score: %.3g ≤ %.3g", b.Score, a.Score)
	}
}

func TestPivotGrid(t *testing.T) {
	ds := &DataStats{RSize: 10000, RSample: make([]codec.Object, 2048)}
	opts := Options{K: 1, Nodes: 4}.withDefaults()
	grid := pivotGrid(ds, opts)
	if len(grid) != 3 {
		t.Fatalf("grid %v, want 3 entries", grid)
	}
	base := int(2 * math.Sqrt(10000))
	if grid[0] != base/2 || grid[1] != base || grid[2] != 2*base {
		t.Fatalf("grid %v, want [%d %d %d]", grid, base/2, base, 2*base)
	}
	opts.NumPivots = 77
	if got := pivotGrid(ds, opts); len(got) != 1 || got[0] != 77 {
		t.Fatalf("pinned grid %v, want [77]", got)
	}
	// Clamps: never above half the sample, never below the node count.
	opts.NumPivots = 100000
	if got := pivotGrid(ds, opts); got[0] != 1024 {
		t.Fatalf("overlarge pivots clamped to %d, want 1024", got[0])
	}
	opts.NumPivots = 1
	opts.Nodes = 8
	if got := pivotGrid(ds, opts); got[0] != 8 {
		t.Fatalf("undersized pivots clamped to %d, want 8", got[0])
	}
}

func TestPlansDeterministicAndRanked(t *testing.T) {
	objs := dataset.Gaussian(2000, 4, 8, 0, 100, 3)
	opts := Options{K: 10, Nodes: 4, Seed: 9}
	ds, err := Measure(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Plans(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plans(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("plan counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Config() != b[i].Config() || a[i].Score != b[i].Score {
			t.Fatalf("rank %d differs across identical calls: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i].Score < a[i-1].Score {
			t.Fatalf("plans not sorted: score[%d]=%.3g < score[%d]=%.3g", i, a[i].Score, i-1, a[i-1].Score)
		}
	}
	if best := Best(a, false); best == nil || best.Approximate {
		t.Fatalf("Best returned %v", best)
	}
}

func TestMeasureErrors(t *testing.T) {
	objs := dataset.Uniform(10, 2, 100, 1)
	if _, err := Measure(nil, objs, Options{K: 1}); err == nil {
		t.Error("empty R accepted")
	}
	if _, err := Measure(objs, nil, Options{K: 1}); err == nil {
		t.Error("empty S accepted")
	}
	ds, err := Measure(objs, objs, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plans(ds, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}
