package planner

import (
	"fmt"
	"math"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
)

// DataStats holds everything the cost model knows about a workload: the
// dataset sizes, retained uniform samples of both sides, and the sampled
// shape statistics — estimated intrinsic dimensionality and cluster
// skew — that tell uniform noise, Gaussian clusters and Zipf-skewed
// density apart. It is computed once per planning call and shared by
// every candidate plan's evaluation.
type DataStats struct {
	// RSize and SSize are the full dataset sizes; Dims the shared
	// dimensionality.
	RSize, SSize int
	Dims         int

	// RSample and SSample are uniform reservoir samples of each side;
	// RFrac and SFrac the sampling fractions |sample| / |dataset| the
	// model scales sampled counts back up with.
	RSample, SSample []codec.Object
	RFrac, SFrac     float64

	// RecBytes is the encoded size of one Tagged record (fixed for a
	// given dimensionality); JoinKeyBytes and RegionKeyBytes the sizes of
	// the composite shuffle keys the join jobs attach to each record.
	RecBytes       int
	JoinKeyBytes   int
	RegionKeyBytes int

	// IntrinsicDim is the two-NN maximum-likelihood estimate (Facco et
	// al. 2017) of the data's intrinsic dimensionality, clamped to
	// [1, Dims]. High-dimensional embeddings of low-dimensional
	// structure (the Forest dataset's clustered terrain) score low; true
	// uniform noise scores near Dims. Index-based plans (H-BRJ's R-tree)
	// degrade as this grows.
	IntrinsicDim float64

	// ClusterSkew is the coefficient of variation of partition sizes
	// when the S sample is Voronoi-partitioned over a small probe pivot
	// set: ~0.3 for uniform data, ≥1 for heavily clustered or
	// Zipf-skewed data where fixed-grid plans overload one reducer.
	ClusterSkew float64
}

// probePivots is the probe partition count behind ClusterSkew.
const probePivots = 16

// intrinsicDimProbes caps the two-NN estimate's query count.
const intrinsicDimProbes = 256

// Measure computes the sampled statistics of a workload held in memory.
// The sample size and seed come from the Options (SampleSize zero
// selects the default).
func Measure(r, s []codec.Object, opts Options) (*DataStats, error) {
	opts = opts.withDefaults()
	if len(r) == 0 || len(s) == 0 {
		return nil, fmt.Errorf("planner: cannot plan over an empty dataset (|R|=%d, |S|=%d)", len(r), len(s))
	}
	rs := SampleObjects(r, opts.SampleSize, opts.Seed)
	ss := SampleObjects(s, opts.SampleSize, opts.Seed+1)
	return measure(rs, ss, len(r), len(s), opts)
}

// MeasureStore computes the same statistics over two DFS files of Tagged
// records, sampling one input split at a time.
func MeasureStore(fs dfs.Store, rFile, sFile string, opts Options) (*DataStats, error) {
	opts = opts.withDefaults()
	rs, rSize, err := SampleStore(fs, rFile, opts.SampleSize, opts.Seed)
	if err != nil {
		return nil, err
	}
	ss, sSize, err := SampleStore(fs, sFile, opts.SampleSize, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	if rSize == 0 || sSize == 0 {
		return nil, fmt.Errorf("planner: cannot plan over an empty dataset (|R|=%d, |S|=%d)", rSize, sSize)
	}
	return measure(rs, ss, rSize, sSize, opts)
}

func measure(rSample, sSample []codec.Object, rSize, sSize int, opts Options) (*DataStats, error) {
	// Dimensionality must agree before any sampled geometry runs —
	// Metric.Dist treats a mix as a programming error and panics.
	dim := rSample[0].Point.Dim()
	for _, set := range [][]codec.Object{rSample, sSample} {
		for i := range set {
			if d := set[i].Point.Dim(); d != dim {
				return nil, fmt.Errorf("planner: object %d has %d dims, want %d", set[i].ID, d, dim)
			}
		}
	}
	probe := codec.Tagged{Object: rSample[0], Src: codec.FromR, Partition: 0}
	ds := &DataStats{
		RSize:          rSize,
		SSize:          sSize,
		Dims:           rSample[0].Point.Dim(),
		RSample:        rSample,
		SSample:        sSample,
		RFrac:          float64(len(rSample)) / float64(rSize),
		SFrac:          float64(len(sSample)) / float64(sSize),
		RecBytes:       len(codec.EncodeTagged(probe)),
		JoinKeyBytes:   len(codec.JoinKey(0, probe)),
		RegionKeyBytes: len(codec.RegionKey(0, probe)),
	}
	ds.IntrinsicDim = intrinsicDim(sSample, opts.Metric, ds.Dims)
	ds.ClusterSkew = clusterSkew(sSample, opts.Metric)
	return ds, nil
}

// intrinsicDim is the two-NN MLE of intrinsic dimensionality: for each
// probe point, μ = d₂/d₁ (second- over first-nearest-neighbor distance
// within the sample); d̂ = n / Σ ln μ. Duplicate-heavy probes (d₁ = 0)
// are skipped; a degenerate sample falls back to the ambient Dims.
func intrinsicDim(sample []codec.Object, m vector.Metric, dims int) float64 {
	if len(sample) < 3 {
		return float64(dims)
	}
	stride := len(sample) / intrinsicDimProbes
	if stride < 1 {
		stride = 1
	}
	var sumLog float64
	var used int
	for i := 0; i < len(sample); i += stride {
		d1, d2 := math.Inf(1), math.Inf(1)
		for j := range sample {
			if j == i {
				continue
			}
			d := m.Dist(sample[i].Point, sample[j].Point)
			switch {
			case d < d1:
				d1, d2 = d, d1
			case d < d2:
				d2 = d
			}
		}
		if d1 > 0 && d2 > d1 && !math.IsInf(d2, 1) {
			sumLog += math.Log(d2 / d1)
			used++
		}
	}
	if used == 0 || sumLog <= 0 {
		return float64(dims)
	}
	d := float64(used) / sumLog
	return math.Max(1, math.Min(float64(dims), d))
}

// clusterSkew Voronoi-partitions the sample over probePivots pivots
// drawn from it and returns the coefficient of variation (stddev over
// mean) of the partition sizes — a dimensionless skew measure that does
// not depend on the sample size. The probe pivots are farthest-first
// (geometrically spread), so a dense Zipf cluster falls into few cells
// and shows up as one overloaded partition instead of being split
// across many density-proportional pivots.
func clusterSkew(sample []codec.Object, m vector.Metric) float64 {
	if len(sample) < 2*probePivots {
		return 0
	}
	pivots, err := pivot.Select(pivot.Farthest, sample, probePivots, pivot.Options{Metric: m, Seed: 1})
	if err != nil {
		return 0
	}
	counts := make([]float64, probePivots)
	for _, o := range sample {
		best, bestD := 0, m.Dist(o.Point, pivots[0])
		for j := 1; j < len(pivots); j++ {
			if d := m.Dist(o.Point, pivots[j]); d < bestD {
				best, bestD = j, d
			}
		}
		counts[best]++
	}
	mean := float64(len(sample)) / probePivots
	var sq float64
	for _, c := range counts {
		sq += (c - mean) * (c - mean)
	}
	return math.Sqrt(sq/probePivots) / mean
}
