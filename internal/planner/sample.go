package planner

import (
	"fmt"
	"math/rand"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
)

// Reservoir is a one-pass uniform random sampler (Vitter's Algorithm R):
// feed it any number of objects and it retains a uniform sample of at
// most its capacity, using O(capacity) memory. It is the planner's way
// of looking at a dataset — an in-memory slice or a DFS file — without
// ever holding more than the sample.
type Reservoir struct {
	cap  int
	rng  *rand.Rand
	seen int64
	objs []codec.Object
}

// NewReservoir returns a sampler retaining at most capacity objects.
// The seed fixes which objects survive, so sampling is deterministic.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic("planner: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one object to the reservoir.
func (r *Reservoir) Add(o codec.Object) {
	r.seen++
	if len(r.objs) < r.cap {
		r.objs = append(r.objs, o)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.objs[j] = o
	}
}

// Seen returns how many objects were offered in total.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the retained sample (at most the capacity, exactly the
// offered count when fewer were offered). The returned slice is the
// reservoir's own storage; callers must not Add afterwards.
func (r *Reservoir) Sample() []codec.Object { return r.objs }

// SampleObjects draws a deterministic uniform sample of at most n
// objects from objs in one pass.
func SampleObjects(objs []codec.Object, n int, seed int64) []codec.Object {
	res := NewReservoir(n, seed)
	for _, o := range objs {
		res.Add(o)
	}
	return res.Sample()
}

// SampleStore draws a deterministic uniform sample of at most n objects
// from a DFS file of Tagged records, loading one input split at a time —
// so sampling a disk-backed Store never holds more than one chunk plus
// the sample in memory. It returns the sample and the file's total
// object count.
func SampleStore(fs dfs.Store, name string, n int, seed int64) ([]codec.Object, int, error) {
	splits, err := fs.Splits(name)
	if err != nil {
		return nil, 0, err
	}
	res := NewReservoir(n, seed)
	for _, sp := range splits {
		recs, err := sp.Load()
		if err != nil {
			return nil, 0, err
		}
		for i, rec := range recs {
			t, err := codec.DecodeTagged(rec)
			if err != nil {
				return nil, 0, fmt.Errorf("planner: record %d of %q: %w", i, name, err)
			}
			res.Add(t.Object)
		}
	}
	return res.Sample(), int(res.Seen()), nil
}
