// Package planner is the cost-based query planner: it decides which join
// algorithm and which tuning knobs (pivot count, pivot-selection
// strategy, grouping strategy) to run for a given workload, instead of
// making the caller hand-pick them.
//
// Planning happens in three steps, all deterministic per seed:
//
//  1. Statistics. A one-pass reservoir sampler draws a uniform sample of
//     each dataset (from memory or a DFS Store); from the samples the
//     planner measures intrinsic dimensionality (two-NN MLE) and cluster
//     skew (partition-size variation over probe pivots) — see DataStats.
//  2. Cost model. For every candidate configuration — each algorithm
//     across a grid of NumPivots × PivotStrategy × GroupStrategy — the
//     paper's own machinery is re-run on the samples: pivots are
//     selected, both samples Voronoi-partitioned, summary tables built
//     at the sample-scaled k, θ bounds derived (Algorithm 1), groups
//     formed (§5.2), and Theorem 7's replication RP(S) evaluated exactly
//     on the sampled pivot-distance lists. Reducer compute is predicted
//     by replaying Algorithm 3's pruning (Corollary 1 hyperplanes,
//     Theorem 2 windows) over strided probe objects. Sampled counts
//     scale back by the sampling fractions — see cost.go.
//  3. Ranking. Each prediction collapses to a scalar score (job
//     overhead + max(parallel share, critical path) + spill round-trip)
//     and the plans sort ascending. Approximate algorithms (ZKNN, LSH)
//     are ranked but flagged, and skipped by Best unless requested.
//
// The public API surfaces this as knnjoin.AutoPlan and Algorithm Auto;
// cmd/knnplan is the standalone EXPLAIN tool; the plan benchmark suite
// (cmd/shufflebench -suite plan) regression-gates the ranking against
// measured wall times.
package planner

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
)

// DefaultSampleSize is the per-dataset reservoir capacity used when
// Options.SampleSize is zero: large enough that the Theorem-7 replication
// estimate is stable, small enough that planning costs milliseconds.
const DefaultSampleSize = 2048

// DefaultMaxProbes caps how many sampled R objects the Algorithm-3
// replay probes per candidate plan.
const DefaultMaxProbes = 256

// Options configures a planning call.
type Options struct {
	// K is the number of neighbors per R object. Required, positive.
	K int
	// Nodes is the simulated cluster size; default 4.
	Nodes int
	// Metric is the distance measure; default L2.
	Metric vector.Metric
	// MemLimit is the resident shuffle budget (0 = unlimited): plans
	// whose shuffle exceeds it pay the predicted spill round-trip.
	MemLimit int64
	// SampleSize is the per-dataset reservoir capacity; 0 selects
	// DefaultSampleSize.
	SampleSize int
	// MaxProbes caps the Algorithm-3 replay's probe count; 0 selects
	// DefaultMaxProbes.
	MaxProbes int
	// Seed fixes sampling and every randomized choice.
	Seed int64
	// NumPivots pins the pivot grid to one value when positive; 0 lets
	// the planner sweep its grid.
	NumPivots int
	// PivotStrategies is the strategy grid; nil selects random and
	// farthest (k-means costs more to evaluate than it tends to return).
	PivotStrategies []pivot.Strategy
	// AllowApproximate lets Best return a flagged approximate plan
	// (ZKNN, LSH) when it ranks first.
	AllowApproximate bool
	// Kernel is the reduce-side distance scan tier the join will run
	// with; the block-kernel plans are priced with its measured speedup
	// (see kernelFactor), which shifts the compute/shuffle balance
	// against the scalar-path plans (BruteForce, H-BRJ).
	Kernel vector.Kernel
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.SampleSize <= 0 {
		o.SampleSize = DefaultSampleSize
	}
	if o.MaxProbes <= 0 {
		o.MaxProbes = DefaultMaxProbes
	}
	if o.PivotStrategies == nil {
		o.PivotStrategies = []pivot.Strategy{pivot.Random, pivot.Farthest}
	}
	return o
}

// Plans evaluates the full candidate grid against the measured
// statistics and returns every plan ranked by ascending predicted cost.
// The first exact plan is the planner's pick (see Best).
func Plans(ds *DataStats, opts Options) ([]Plan, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("planner: Options.K must be positive, got %d", opts.K)
	}
	opts = opts.withDefaults()
	plans := []Plan{
		costBruteForce(ds, opts),
		costBroadcast(ds, opts),
		costHBRJ(ds, opts),
		costTheta(ds, opts),
	}
	if opts.Metric == vector.L2 {
		// The approximate joins are Euclidean-only (z-order locality and
		// the p-stable hash family); under other metrics they would not
		// be executable plans.
		plans = append(plans, costZKNN(ds, opts), costLSH(ds, opts))
	}
	for _, numPivots := range pivotGrid(ds, opts) {
		for _, strat := range opts.PivotStrategies {
			st, err := buildPivotState(ds, opts, numPivots, strat)
			if err != nil {
				return nil, err
			}
			for _, gs := range []pgbj.GroupStrategy{pgbj.Geometric, pgbj.Greedy} {
				p, err := costPGBJ(ds, opts, st, gs)
				if err != nil {
					return nil, err
				}
				plans = append(plans, p)
			}
			plans = append(plans, costPBJ(ds, opts, st))
		}
	}
	sort.SliceStable(plans, func(i, j int) bool {
		if plans[i].Score != plans[j].Score {
			return plans[i].Score < plans[j].Score
		}
		return plans[i].Config() < plans[j].Config()
	})
	return plans, nil
}

// Best returns the ranked list's pick: the first plan, skipping
// approximate ones unless allowApprox. It returns nil only for an empty
// list.
func Best(plans []Plan, allowApprox bool) *Plan {
	for i := range plans {
		if allowApprox || !plans[i].Approximate {
			return &plans[i]
		}
	}
	return nil
}

// pivotGrid returns the NumPivots sweep: the library default 2·√|R|
// bracketed by half and double, clamped so pivots stay selectable from
// the R sample and at least the node count. Options.NumPivots pins the
// grid to a single value.
func pivotGrid(ds *DataStats, opts Options) []int {
	maxP := len(ds.RSample) / 2
	if maxP < 1 {
		maxP = 1
	}
	clamp := func(p int) int {
		if p < opts.Nodes {
			p = opts.Nodes
		}
		if p > maxP {
			p = maxP
		}
		if p > ds.RSize {
			p = ds.RSize
		}
		if p < 1 {
			p = 1
		}
		return p
	}
	if opts.NumPivots > 0 {
		return []int{clamp(opts.NumPivots)}
	}
	base := int(2 * math.Sqrt(float64(ds.RSize)))
	grid := []int{clamp(base / 2), clamp(base), clamp(2 * base)}
	sort.Ints(grid)
	out := grid[:0]
	for i, p := range grid {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Explain renders the measured statistics and the ranked plans as the
// aligned text table the EXPLAIN tooling prints.
func Explain(ds *DataStats, plans []Plan) string {
	head := fmt.Sprintf(
		"|R|=%d |S|=%d dims=%d (intrinsic ≈ %.1f) cluster-skew=%.2f sample=%d/%d\n\n",
		ds.RSize, ds.SSize, ds.Dims, ds.IntrinsicDim, ds.ClusterSkew,
		len(ds.RSample), len(ds.SSample))
	t := &stats.Table{Header: []string{
		"#", "plan", "repl", "shuffle", "dist comps", "max/reducer", "spill", "score", "why",
	}}
	for i, p := range plans {
		repl := "-"
		if ds.SSize > 0 && p.Predicted.ReplicasS > 0 {
			repl = fmt.Sprintf("%.2f", float64(p.Predicted.ReplicasS)/float64(ds.SSize))
		}
		spill := "-"
		if p.Predicted.SpillBytes > 0 {
			spill = stats.FormatBytes(p.Predicted.SpillBytes)
		}
		t.AddRow(i+1, p.Config(), repl, stats.FormatBytes(p.Predicted.ShuffleBytes),
			compact(p.Predicted.DistComps), compact(p.Predicted.MaxReducerComps),
			spill, fmt.Sprintf("%.3g", p.Score), p.Why)
	}
	return head + t.String()
}
