package planner_test

import (
	"fmt"
	"testing"
	"time"

	"knnjoin"
	"knnjoin/internal/dataset"
	"knnjoin/internal/planner"
)

// TestSmokeExplain is an exploratory harness: -v prints the ranked plans
// and measured walls for each workload shape.
func TestSmokeExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("exploratory")
	}
	const n = 4000
	shapes := []struct {
		name string
		r, s []knnjoin.Object
	}{
		{"uniform", dataset.Uniform(n, 4, 100, 1), nil},
		{"gaussian", dataset.Gaussian(n, 4, 8, 0, 100, 1), nil},
		{"zipf", dataset.Zipf(n, 2, 64, 100, 1), nil},
		{"lopsided", dataset.Uniform(n/16, 4, 100, 1), dataset.Uniform(n, 4, 100, 2)},
	}
	for _, sh := range shapes {
		s := sh.s
		if s == nil {
			s = sh.r
		}
		opts := planner.Options{K: 10, Nodes: 4, Seed: 1}
		ds, err := planner.Measure(sh.r, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		plans, err := planner.Plans(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("=== %s ===\n%s", sh.name, planner.Explain(ds, plans[:8]))
		// Measure a few fixed algorithms for comparison.
		for _, algo := range []knnjoin.Algorithm{knnjoin.PGBJ, knnjoin.HBRJ, knnjoin.Broadcast, knnjoin.Theta, knnjoin.BruteForce} {
			start := time.Now()
			_, st, err := knnjoin.Join(sh.r, s, knnjoin.Options{K: 10, Algorithm: algo, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("%-10s %-12s wall=%-12v shuffle=%-12d pairs=%d\n",
				sh.name, algo, time.Since(start).Round(time.Millisecond), st.ShuffleBytes, st.Pairs)
		}
	}
}
