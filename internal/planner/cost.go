package planner

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/grouping"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/pgbj"
	"knnjoin/internal/pivot"
	"knnjoin/internal/stats"
	"knnjoin/internal/theta"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// Cost weights, in nanosecond-like units. The absolute values are rough
// calibrations of this repository's kernels on commodity hardware; only
// their ratios matter, because the planner ranks plans rather than
// forecasting wall clocks. The plan benchmark suite
// (cmd/shufflebench -suite plan) is the regression gate that keeps the
// ratios honest: it fails when the ranking picks a plan measurably far
// from the best fixed one.
const (
	// costDistBase and costDistDim price one distance computation on the
	// fused block kernels (vector.Block.NearestK and friends): a fixed
	// dispatch cost plus a per-dimension multiply-add, including the
	// amortized decode. Calibrated against the broadcast reducer's
	// measured throughput.
	costDistBase = 8.0
	costDistDim  = 1.5
	// costDistScalarBase/Dim price one distance computation on the
	// scalar paths — BruteForce's per-pair heap pushes and H-BRJ's
	// R-tree traversals — which measure ~2.5× the fused kernels.
	costDistScalarBase = 30.0
	costDistScalarDim  = 2.0
	// costShuffleByte prices one key+value byte through the sort-merge
	// shuffle (encode, sort, merge, group, decode).
	costShuffleByte = 20.0
	// costSpillByte prices one byte written to and re-read from run
	// files when the shuffle exceeds the memory budget.
	costSpillByte = 40.0
	// costJob is the fixed overhead of one MapReduce job on the
	// in-process engine: task spawning plus the per-record encode/decode
	// floor every job pays regardless of size. It is what makes an extra
	// merge job (PBJ, H-BRJ) expensive on small inputs and lets
	// BruteForce win tiny joins.
	costJob = 2e6
	// pbjThetaLooseness inflates the pruning radius when simulating PBJ:
	// its per-block θ (Algorithm 1 restricted to local S partitions) is
	// looser than PGBJ's global bound, which is why the paper finds PBJ
	// slower (§6.2).
	pbjThetaLooseness = 1.5
)

// distCost prices n distance computations at dimensionality dims on the
// fused block kernels.
func distCost(n int64, dims int) float64 {
	return float64(n) * (costDistBase + costDistDim*float64(dims))
}

// scalarDistCost prices n distance computations on the scalar paths.
func scalarDistCost(n int64, dims int) float64 {
	return float64(n) * (costDistScalarBase + costDistScalarDim*float64(dims))
}

// kernelFactor scales the fused-kernel distance price for the selected
// scan tier, calibrated against the BENCH_dist kernel suite: the
// float32 mirror trims bandwidth but pays refine traffic (~0.9×), the
// quantized uint8 first pass cuts filter bandwidth 8× and wins once the
// scan is bandwidth-bound (~0.5× from d=8 up, ~0.9× below), and the
// reference scalar tier costs ~2× the fused loop. KernelAuto resolves
// exactly the way vector.Block's per-block choice does — quantized at
// d ≥ 8, fused below — so Auto plans are priced as what will run.
func kernelFactor(k vector.Kernel, dims int) float64 {
	if k == vector.KernelAuto {
		if dims >= 8 {
			k = vector.KernelQuantized
		} else {
			k = vector.KernelBlock
		}
	}
	switch k {
	case vector.KernelScalar:
		return 2.0
	case vector.KernelF32:
		return 0.9
	case vector.KernelQuantized:
		if dims >= 8 {
			return 0.5
		}
		return 0.9
	}
	return 1.0
}

// Prediction is the cost model's estimate of what one plan would do —
// the quantities the paper's evaluation measures (§6), predicted before
// running. Stats from an actual run expose the matching actuals, making
// every prediction falsifiable.
type Prediction struct {
	// Jobs is the number of MapReduce jobs the plan launches.
	Jobs int
	// ShuffleRecords and ShuffleBytes estimate the total shuffle volume
	// across all jobs.
	ShuffleRecords int64
	ShuffleBytes   int64
	// ReplicasS estimates the S-object copies shipped to reducers
	// (Theorem 7's RP(S) for the pivot plans).
	ReplicasS int64
	// DistComps estimates total distance computations (Equation 13's
	// numerator), map and reduce side.
	DistComps int64
	// MaxReducerComps estimates the slowest reducer's distance
	// computations — the join job's critical path.
	MaxReducerComps int64
	// SpillBytes estimates the bytes that must round-trip through run
	// files under the memory budget (0 when the shuffle fits).
	SpillBytes int64
}

// Plan is one ranked candidate configuration: a concrete algorithm plus
// its tuning knobs, the model's cost prediction, and the scalar score
// the ranking sorts by (lower is better).
type Plan struct {
	// Algo is the canonical algorithm name, parseable by
	// knnjoin.ParseAlgorithm ("pgbj", "pbj", "hbrj", "broadcast",
	// "bruteforce", "zknn", "theta", "lsh").
	Algo string
	// NumPivots, PivotStrategy and GroupStrategy are the pivot-plan
	// knobs; zero-valued for algorithms without pivots.
	NumPivots     int
	PivotStrategy pivot.Strategy
	GroupStrategy pgbj.GroupStrategy
	// Approximate marks plans whose result is not exact (ZKNN, LSH);
	// Best skips them unless asked not to.
	Approximate bool
	// Predicted is the cost model's estimate; Score its scalar collapse.
	Predicted Prediction
	Score     float64
	// Why is a one-line human-readable justification.
	Why string
}

// Config renders the plan's configuration compactly ("pgbj p=64
// farthest/greedy", "broadcast").
func (p Plan) Config() string {
	if p.NumPivots == 0 {
		return p.Algo
	}
	if p.Algo == "pbj" {
		return fmt.Sprintf("%s p=%d %s", p.Algo, p.NumPivots, p.PivotStrategy)
	}
	return fmt.Sprintf("%s p=%d %s/%s", p.Algo, p.NumPivots, p.PivotStrategy, p.GroupStrategy)
}

// PlanInfo converts the plan into the stats-package form a Report
// carries, stamping the candidate count.
func (p Plan) PlanInfo(candidates int) *stats.PlanInfo {
	info := &stats.PlanInfo{
		Algorithm:             p.Algo,
		NumPivots:             p.NumPivots,
		Score:                 p.Score,
		Candidates:            candidates,
		PredictedShuffleBytes: p.Predicted.ShuffleBytes,
		PredictedDistComps:    p.Predicted.DistComps,
		PredictedReplicasS:    p.Predicted.ReplicasS,
		Why:                   p.Why,
	}
	if p.NumPivots > 0 {
		info.PivotStrategy = p.PivotStrategy.String()
		if p.Algo != "pbj" {
			info.GroupStrategy = p.GroupStrategy.String()
		}
	}
	return info
}

// pivotState caches everything shared by the PGBJ and PBJ candidates of
// one (NumPivots, PivotStrategy) pair: pivots selected from the R
// sample, the sampled Voronoi partitioning of both sides, the summary
// tables built at the sample-scaled k, the Algorithm-1 bounds θ, and the
// per-partition ascending pivot-distance lists Theorem-7 evaluation
// needs.
type pivotState struct {
	numPivots int
	strategy  pivot.Strategy
	pp        *voronoi.Partitioner
	sum       *voronoi.Summary
	thetas    []float64
	rParts    [][]codec.Tagged
	sParts    [][]codec.Tagged // each sorted by ascending pivot distance
	sDists    [][]float64
	kSample   int

	// simExact and simLoose memoize the Algorithm-3 replay (per-partition
	// full-data reduce comps): the exact-θ run is shared by every
	// grouping strategy of this state, the loosened-θ run by PBJ.
	simExact []float64
	simLoose []float64
}

// sampleK scales k to the S sampling fraction: the k-th nearest of the
// full S is approximately the round(k·SFrac)-th nearest of a uniform
// SFrac-sample, so summary tables and pruning heaps built on the sample
// use this rank. The floor of 1 makes sparse samples conservative (the
// bound loosens, predictions overestimate — consistently across plans).
func sampleK(k int, sFrac float64) int {
	ks := int(math.Round(float64(k) * sFrac))
	if ks < 1 {
		ks = 1
	}
	if ks > k {
		ks = k
	}
	return ks
}

// buildPivotState selects numPivots pivots from the R sample with the
// strategy and rebuilds the PGBJ preprocessing state (partitioning,
// summary, θ) on the samples.
func buildPivotState(ds *DataStats, opts Options, numPivots int, strat pivot.Strategy) (*pivotState, error) {
	pivots, err := pivot.Select(strat, ds.RSample, numPivots, pivot.Options{Metric: opts.Metric, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	pp := voronoi.NewPartitioner(pivots, opts.Metric)
	kS := sampleK(opts.K, ds.SFrac)
	b := voronoi.NewSummaryBuilder(pp.NumPartitions(), kS)
	rParts := pp.Partition(ds.RSample, codec.FromR, nil)
	sParts := pp.Partition(ds.SSample, codec.FromS, nil)
	for _, g := range rParts {
		for _, t := range g {
			b.Add(t)
		}
	}
	sDists := make([][]float64, len(sParts))
	for i, g := range sParts {
		for _, t := range g {
			b.Add(t)
		}
		voronoi.SortByPivotDist(g)
		dists := make([]float64, len(g))
		for j, t := range g {
			dists[j] = t.PivotDist
		}
		sDists[i] = dists
	}
	sum := b.Finalize()
	return &pivotState{
		numPivots: numPivots,
		strategy:  strat,
		pp:        pp,
		sum:       sum,
		thetas:    grouping.Thetas(sum, pp),
		rParts:    rParts,
		sParts:    sParts,
		sDists:    sDists,
		kSample:   kS,
	}, nil
}

// pivotSelectComps models the full-run distance cost of pivot selection
// (§4.1): random sampling is free, farthest-first probes every R object
// per pivot, k-means adds its iteration count on top.
func pivotSelectComps(strat pivot.Strategy, numPivots, rSize int) int64 {
	switch strat {
	case pivot.Farthest:
		return int64(numPivots) * int64(rSize)
	case pivot.KMeans:
		return 10 * int64(numPivots) * int64(rSize)
	}
	return 0
}

// simulate replays Algorithm 3 on the samples: for a strided set of
// probe R objects it walks the S partitions nearest-pivot first, applies
// Corollary-1 hyperplane pruning and the Theorem-2 window against the
// sampled summary, scans the surviving sampled candidates to tighten θ
// exactly as the reducer would, and scales the counted work back to
// full-data volume. thetaScale loosens the bound (PBJ's per-block θ).
// The result is per-R-partition predicted reduce-side distance
// computations; callers aggregate it per reducer group. Both runs are
// memoized on the state — the replay does not depend on the grouping.
func (st *pivotState) simulate(ds *DataStats, opts Options, thetaScale float64) []float64 {
	switch {
	case thetaScale == 1 && st.simExact != nil:
		return st.simExact
	case thetaScale != 1 && st.simLoose != nil:
		return st.simLoose
	}
	perPart := make([]float64, st.pp.NumPartitions())
	stride := len(ds.RSample) / opts.MaxProbes
	if stride < 1 {
		stride = 1
	}
	heap := nnheap.NewKHeap(st.kSample)
	order := make([]int, st.pp.NumPartitions())
	probes := 0
	idx := 0
	for pi, part := range st.rParts {
		if len(part) == 0 {
			continue
		}
		// Line 14's visit order (nearest pivot first, so θ tightens
		// early) is a property of the partition, computed once for all
		// its probes.
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool {
			ga, gb := st.pp.PivotDist(pi, order[a]), st.pp.PivotDist(pi, order[b])
			if ga != gb {
				return ga < gb
			}
			return order[a] < order[b]
		})
		thetaInit := st.thetas[pi] * thetaScale
		for _, r := range part {
			if idx%stride != 0 {
				idx++
				continue
			}
			idx++
			probes++
			heap.Reset()
			theta := thetaInit
			var pivotComps, candComps float64
			for _, j := range order {
				if len(st.sDists[j]) == 0 {
					continue
				}
				rToPj := opts.Metric.Dist(r.Point, st.pp.Pivots[j])
				pivotComps++
				if j != pi && voronoi.HyperplaneDist(rToPj, r.PivotDist, st.pp.PivotDist(pi, j), opts.Metric) > theta {
					continue
				}
				wlo, whi, ok := voronoi.Theorem2Window(st.sum.S[j], rToPj, theta)
				if !ok {
					continue
				}
				lo := sort.SearchFloat64s(st.sDists[j], wlo)
				hi := sort.Search(len(st.sDists[j]), func(x int) bool { return st.sDists[j][x] > whi })
				for x := lo; x < hi; x++ {
					heap.Push(nnheap.Candidate{ID: st.sParts[j][x].ID, Dist: opts.Metric.Dist(r.Point, st.sParts[j][x].Point)})
				}
				candComps += float64(hi - lo)
				if heap.Full() {
					if t := heap.Top().Dist; t < theta {
						theta = t
					}
				}
			}
			perPart[pi] += pivotComps + candComps/ds.SFrac
		}
	}
	if probes > 0 {
		// Each probe stands for RSize/probes full R objects.
		weight := float64(ds.RSize) / float64(probes)
		for i := range perPart {
			perPart[i] *= weight
		}
	}
	if thetaScale == 1 {
		st.simExact = perPart
	} else {
		st.simLoose = perPart
	}
	return perPart
}

// spillBytes predicts the run-file round-trip volume: the external
// shuffle spills once the resident half-budget is exceeded.
func spillBytes(shuffleBytes, memLimit int64) int64 {
	if memLimit <= 0 || shuffleBytes <= memLimit/2 {
		return 0
	}
	return shuffleBytes
}

// score collapses a prediction into the scalar the ranking sorts by:
// per-job overhead, plus the larger of the perfectly parallel share and
// the critical path (slowest reducer compute plus its shuffle slice),
// plus the spill round-trip. scalar selects the scalar-path distance
// pricing (BruteForce, H-BRJ trees) over the fused-kernel pricing.
func score(p Prediction, ds *DataStats, opts Options, reducers int, scalar bool) float64 {
	if reducers < 1 {
		reducers = 1
	}
	price := func(n int64, dims int) float64 {
		return distCost(n, dims) * kernelFactor(opts.Kernel, dims)
	}
	if scalar {
		price = scalarDistCost
	}
	parallel := (price(p.DistComps, ds.Dims) + costShuffleByte*float64(p.ShuffleBytes)) / float64(opts.Nodes)
	critical := price(p.MaxReducerComps, ds.Dims) + costShuffleByte*float64(p.ShuffleBytes)/float64(reducers)
	return costJob*float64(p.Jobs) + math.Max(parallel, critical) + costSpillByte*float64(p.SpillBytes)/float64(opts.Nodes)
}

// costPGBJ evaluates one PGBJ candidate: Theorem-7 replication from the
// sampled routing state, the Algorithm-3 replay for reducer compute, and
// shuffle volume from the record and key sizes.
func costPGBJ(ds *DataStats, opts Options, st *pivotState, gs pgbj.GroupStrategy) (Plan, error) {
	numGroups := opts.Nodes
	if numGroups > st.numPivots {
		numGroups = st.numPivots
	}
	var groups *grouping.Result
	var err error
	switch gs {
	case pgbj.Greedy:
		groups, err = grouping.Greedy(st.pp, st.sum, numGroups, st.thetas)
	default:
		groups, err = grouping.Geometric(st.pp, st.sum, numGroups)
	}
	if err != nil {
		return Plan{}, err
	}
	glbs := grouping.GroupLBs(st.pp, st.sum, st.thetas, groups)
	replicas := int64(float64(grouping.ExactReplication(glbs, st.sDists)) / ds.SFrac)
	perPart := st.simulate(ds, opts, 1)
	perGroup := make([]float64, numGroups)
	for pi, w := range perPart {
		perGroup[groups.GroupOf[pi]] += w
	}
	var totalF, maxF float64
	for _, w := range perGroup {
		totalF += w
		if w > maxF {
			maxF = w
		}
	}
	total, maxGroup := int64(totalF), int64(maxF)

	shuffleRecords := int64(ds.RSize) + replicas
	p := Prediction{
		Jobs:            2, // partition + join (pivot selection is driver-side)
		ShuffleRecords:  shuffleRecords,
		ShuffleBytes:    shuffleRecords * int64(ds.RecBytes+ds.JoinKeyBytes),
		ReplicasS:       replicas,
		MaxReducerComps: maxGroup,
	}
	p.DistComps = int64(ds.RSize+ds.SSize)*int64(st.numPivots) +
		pivotSelectComps(st.strategy, st.numPivots, ds.RSize) + total
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{
		Algo:          "pgbj",
		NumPivots:     st.numPivots,
		PivotStrategy: st.strategy,
		GroupStrategy: gs,
		Predicted:     p,
	}
	plan.Score = score(p, ds, opts, numGroups, false)
	plan.Why = fmt.Sprintf("Theorem-7 replication %.2f×, window-pruned reduce ≤%s comps/reducer",
		float64(replicas)/float64(ds.SSize), compact(maxGroup))
	return plan, nil
}

// costPBJ evaluates the PBJ candidate sharing st's pivots: the same
// pruning replayed with the looser per-block θ, the √N×√N block
// replication of both sides, and the extra merge job.
func costPBJ(ds *DataStats, opts Options, st *pivotState) Plan {
	b := hbrj.Blocks(opts.Nodes)
	var totalF float64
	for _, w := range st.simulate(ds, opts, pbjThetaLooseness) {
		totalF += w
	}
	total := int64(totalF)
	// Hash-scattered blocks balance well: the slowest of the b² reducers
	// carries ~1/b² of the work.
	maxReducer := total / int64(b*b)
	joinRecords := int64(b) * int64(ds.RSize+ds.SSize)
	mergeRecords := int64(b) * int64(ds.RSize)
	p := Prediction{
		Jobs:            3, // partition + block join + merge
		ShuffleRecords:  joinRecords + mergeRecords,
		ReplicasS:       int64(b) * int64(ds.SSize),
		DistComps:       int64(ds.RSize+ds.SSize)*int64(st.numPivots) + pivotSelectComps(st.strategy, st.numPivots, ds.RSize) + total,
		MaxReducerComps: maxReducer,
	}
	p.ShuffleBytes = joinRecords*int64(ds.RecBytes+ds.JoinKeyBytes) +
		mergeRecords*int64(resultBytes(opts.K)+8)
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{
		Algo:          "pbj",
		NumPivots:     st.numPivots,
		PivotStrategy: st.strategy,
		Predicted:     p,
	}
	plan.Score = score(p, ds, opts, b*b, false)
	plan.Why = fmt.Sprintf("pivot pruning with per-block θ, √N-block replication %d×(|R|+|S|), extra merge job", b)
	return plan
}

// costBroadcast evaluates the §3 basic strategy: S to every reducer,
// full scans, one job.
func costBroadcast(ds *DataStats, opts Options) Plan {
	replicas := int64(opts.Nodes) * int64(ds.SSize)
	records := int64(ds.RSize) + replicas
	comps := int64(ds.RSize) * int64(ds.SSize)
	p := Prediction{
		Jobs:            1,
		ShuffleRecords:  records,
		ShuffleBytes:    records * int64(ds.RecBytes+ds.RegionKeyBytes),
		ReplicasS:       replicas,
		DistComps:       comps,
		MaxReducerComps: comps / int64(opts.Nodes),
	}
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{Algo: "broadcast", Predicted: p}
	plan.Score = score(p, ds, opts, opts.Nodes, false)
	plan.Why = fmt.Sprintf("ships S to every reducer (%d×|S| shuffle), unpruned scans", opts.Nodes)
	return plan
}

// costBruteForce evaluates the centralized exact join: no cluster, no
// shuffle — the plan of choice for tiny inputs where any MapReduce
// overhead dominates.
func costBruteForce(ds *DataStats, opts Options) Plan {
	comps := int64(ds.RSize) * int64(ds.SSize)
	p := Prediction{DistComps: comps, MaxReducerComps: comps / int64(opts.Nodes)}
	plan := Plan{Algo: "bruteforce", Predicted: p}
	plan.Score = scalarDistCost(comps, ds.Dims) / float64(opts.Nodes)
	plan.Why = "centralized nested loop: zero job and shuffle overhead, O(|R|·|S|) compute"
	return plan
}

// costHBRJ evaluates the R-tree block join: √N×√N replication and
// index-assisted probes whose selectivity decays with intrinsic
// dimensionality (the curse of dimensionality — an R-tree over
// high-intrinsic-dim data degenerates toward the full scan).
func costHBRJ(ds *DataStats, opts Options) Plan {
	b := hbrj.Blocks(opts.Nodes)
	rb := float64(ds.RSize) / float64(b)
	sb := float64(ds.SSize) / float64(b)
	frac := 1.0
	if sb > float64(opts.K) {
		frac = math.Min(1, math.Pow(float64(opts.K)/sb, 1/(1+ds.IntrinsicDim)))
	}
	perReducer := rb * sb * frac
	total := perReducer * float64(b*b)
	joinRecords := int64(b) * int64(ds.RSize+ds.SSize)
	mergeRecords := int64(b) * int64(ds.RSize)
	p := Prediction{
		Jobs:            2,
		ShuffleRecords:  joinRecords + mergeRecords,
		ReplicasS:       int64(b) * int64(ds.SSize),
		DistComps:       int64(total),
		MaxReducerComps: int64(perReducer),
	}
	p.ShuffleBytes = joinRecords*int64(ds.RecBytes+ds.RegionKeyBytes) +
		mergeRecords*int64(resultBytes(opts.K)+8)
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{Algo: "hbrj", Predicted: p}
	plan.Score = score(p, ds, opts, b*b, true)
	plan.Why = fmt.Sprintf("R-tree probes examine ~%.0f%% of each S block at intrinsic dim %.1f", frac*100, ds.IntrinsicDim)
	return plan
}

// costTheta evaluates 1-Bucket-Theta: skew-proof random tiling, full
// cross-product compute.
func costTheta(ds *DataStats, opts Options) Plan {
	rows, cols := theta.Tiling(ds.RSize, ds.SSize, opts.Nodes)
	joinRecords := int64(ds.RSize)*int64(cols) + int64(ds.SSize)*int64(rows)
	mergeRecords := int64(ds.RSize) * int64(cols)
	comps := int64(ds.RSize) * int64(ds.SSize)
	p := Prediction{
		Jobs:            2,
		ShuffleRecords:  joinRecords + mergeRecords,
		ReplicasS:       int64(rows) * int64(ds.SSize),
		DistComps:       comps,
		MaxReducerComps: comps / int64(rows*cols),
	}
	p.ShuffleBytes = joinRecords*int64(ds.RecBytes+ds.RegionKeyBytes) +
		mergeRecords*int64(resultBytes(opts.K)+8)
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{Algo: "theta", Predicted: p}
	plan.Score = score(p, ds, opts, rows*cols, false)
	plan.Why = fmt.Sprintf("%d×%d random tiling: perfectly balanced but full cross-product compute", rows, cols)
	return plan
}

// costZKNN evaluates the approximate z-order join at its default shift
// count.
func costZKNN(ds *DataStats, opts Options) Plan {
	const shifts = 3
	joinRecords := int64(shifts) * int64(ds.RSize+ds.SSize)
	mergeRecords := int64(shifts) * int64(ds.RSize)
	comps := int64(shifts) * int64(ds.RSize) * int64(4*opts.K)
	p := Prediction{
		Jobs:            2,
		ShuffleRecords:  joinRecords + mergeRecords,
		ReplicasS:       int64(shifts) * int64(ds.SSize),
		DistComps:       comps,
		MaxReducerComps: comps / int64(opts.Nodes),
	}
	p.ShuffleBytes = joinRecords*int64(ds.RecBytes+16) +
		mergeRecords*int64(resultBytes(opts.K)+8)
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{Algo: "zknn", Approximate: true, Predicted: p}
	plan.Score = score(p, ds, opts, opts.Nodes, false)
	plan.Why = fmt.Sprintf("APPROXIMATE: %d shifted z-curves, ~%d candidates per object", shifts, 4*opts.K)
	return plan
}

// costLSH evaluates the approximate hashing join at its default table
// count.
func costLSH(ds *DataStats, opts Options) Plan {
	const tables = 4
	joinRecords := int64(tables) * int64(ds.RSize+ds.SSize)
	mergeRecords := int64(tables) * int64(ds.RSize)
	comps := int64(tables) * int64(ds.RSize) * int64(4*opts.K)
	p := Prediction{
		Jobs:            2,
		ShuffleRecords:  joinRecords + mergeRecords,
		ReplicasS:       int64(tables) * int64(ds.SSize),
		DistComps:       comps,
		MaxReducerComps: comps / int64(opts.Nodes),
	}
	p.ShuffleBytes = joinRecords*int64(ds.RecBytes+16) +
		mergeRecords*int64(resultBytes(opts.K)+8)
	p.SpillBytes = spillBytes(p.ShuffleBytes, opts.MemLimit)
	plan := Plan{Algo: "lsh", Approximate: true, Predicted: p}
	plan.Score = score(p, ds, opts, opts.Nodes, false)
	plan.Why = fmt.Sprintf("APPROXIMATE: %d hash tables, bucket-local verification", tables)
	return plan
}

// resultBytes is the encoded size of one k-neighbor Result record — the
// payload of the merge jobs' shuffles.
func resultBytes(k int) int {
	nbs := make([]codec.Neighbor, k)
	return len(codec.EncodeResult(codec.Result{Neighbors: nbs}))
}

// compact renders a count with a metric suffix for Why strings.
func compact(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprint(n)
}
