package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

import "math"

func emitDist(s float64) float64 {
	return math.Sqrt(s) //lint:allow sqrtfree: the emit site
}

//lint:allow maprange: integer counter merge, Add is commutative
func merge(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

//lint:allow
//lint:allow nosuchanalyzer: reason
//lint:allow sqrtfree
func bad() {}
`

func parseDirectiveSrc(t *testing.T) (*token.FileSet, []directive, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var bad []Diagnostic
	dirs := parseDirectives(fset, f, func(d Diagnostic) { bad = append(bad, d) })
	return fset, dirs, bad
}

// TestParseDirectives checks that well-formed directives parse with
// their justification and malformed ones become findings themselves.
func TestParseDirectives(t *testing.T) {
	_, dirs, bad := parseDirectiveSrc(t)
	if len(dirs) != 2 {
		t.Fatalf("parsed %d directives, want 2: %+v", len(dirs), dirs)
	}
	if dirs[0].Analyzer != "sqrtfree" || dirs[0].Reason != "the emit site" {
		t.Errorf("directive 0 = %+v", dirs[0])
	}
	if dirs[1].Analyzer != "maprange" || !strings.Contains(dirs[1].Reason, "commutative") {
		t.Errorf("directive 1 = %+v", dirs[1])
	}
	if len(bad) != 3 {
		t.Fatalf("got %d malformed-directive findings, want 3: %+v", len(bad), bad)
	}
	for i, wantSub := range []string{"names no analyzer", "unknown analyzer", "no justification"} {
		if !strings.Contains(bad[i].Message, wantSub) {
			t.Errorf("malformed finding %d = %q, want substring %q", i, bad[i].Message, wantSub)
		}
	}
}

// TestSuppressed checks the directive's coverage window: same line and
// the line directly below, same file, same analyzer only.
func TestSuppressed(t *testing.T) {
	_, dirs, _ := parseDirectiveSrc(t)
	diag := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: line},
		}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{diag("p.go", 6, "sqrtfree"), true},   // inline, same line
		{diag("p.go", 7, "sqrtfree"), true},   // line below the directive
		{diag("p.go", 6, "maprange"), false},  // other analyzer
		{diag("p.go", 8, "sqrtfree"), false},  // out of the window
		{diag("q.go", 6, "sqrtfree"), false},  // other file
		{diag("p.go", 10, "maprange"), true},  // directive above func decl
		{diag("p.go", 12, "maprange"), false}, // loop line, beyond window
	}
	for i, c := range cases {
		if got := suppressed(c.d, dirs); got != c.want {
			t.Errorf("case %d (%s:%d %s): suppressed = %v, want %v",
				i, c.d.Pos.Filename, c.d.Pos.Line, c.d.Analyzer, got, c.want)
		}
	}
}
