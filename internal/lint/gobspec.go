package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GobSpec checks that every struct registered through
// mapreduce.DefineKind is wire-safe: the spec crosses the
// coordinator→worker process boundary as a gob blob, and gob's failure
// modes are silent (unexported fields are dropped, nil and empty slices
// collapse, funcs and chans refuse to encode only at runtime). Each of
// these was a PR-7 bug class: lsh tables lost their unexported fields,
// and zknn's shift slices came back nil where the in-process engine saw
// empty. The analyzer walks the DefineKind type argument's full type
// graph and additionally flags nil-comparisons against the spec's slice
// and map fields anywhere in the registering package, because after one
// round-trip nil-vs-empty is no longer a meaningful distinction.
var GobSpec = &Analyzer{
	Name: "gobspec",
	Doc: "structs registered with mapreduce.DefineKind must survive a gob round-trip: " +
		"all fields exported, no func/chan/unsafe.Pointer state, and no nil-checks on " +
		"slice or map fields (gob decodes empty as nil)",
	Run: runGobSpec,
}

func runGobSpec(pass *Pass) {
	// Every instantiation of a function named DefineKind from a package
	// named mapreduce registers its first type argument as a wire spec.
	specs := map[*types.Named]token.Pos{}
	for id, inst := range pass.Info.Instances {
		if id.Name != "DefineKind" {
			continue
		}
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "mapreduce" {
			continue
		}
		if inst.TypeArgs.Len() == 0 {
			continue
		}
		if n := namedOrigin(inst.TypeArgs.At(0)); n != nil {
			specs[n] = id.Pos()
		} else {
			// Non-named spec (e.g. a bare struct literal type): walk it
			// directly, anchored at the call.
			walkGobType(pass, inst.TypeArgs.At(0), typeString(pass, inst.TypeArgs.At(0)), id.Pos(), map[types.Type]bool{})
		}
	}
	for spec, pos := range specs {
		walkGobType(pass, spec, spec.Obj().Name(), pos, map[types.Type]bool{})
	}
	if len(specs) > 0 {
		flagNilChecks(pass, specs)
	}
}

// typeString renders a type relative to the pass package for messages.
func typeString(pass *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

// selfCoding reports whether t (or *t) implements gob or binary
// self-encoding; such types are opaque to gob's reflection walk and
// need no field inspection.
func selfCoding(t types.Type) bool {
	for _, name := range []string{"GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary"} {
		if m, _, _ := types.LookupFieldOrMethod(t, true, nil, name); m != nil {
			if _, isFunc := m.(*types.Func); isFunc {
				return true
			}
		}
	}
	return false
}

// walkGobType recursively validates the type graph rooted at t,
// reporting every gob hazard against the DefineKind call at pos. path
// names the offending field chain ("pbjSpec.Opts.Hook") so the message
// survives the indirection.
func walkGobType(pass *Pass, t types.Type, path string, pos token.Pos, seen map[types.Type]bool) {
	if seen[t] {
		return
	}
	seen[t] = true
	if selfCoding(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			fpath := path + "." + f.Name()
			if !f.Exported() {
				pass.Reportf(pos, "gob spec field %s is unexported: gob drops it silently, the worker rebuilds the job from a zero value", fpath)
				continue
			}
			walkGobType(pass, f.Type(), fpath, pos, seen)
		}
	case *types.Slice:
		walkGobType(pass, u.Elem(), path+"[]", pos, seen)
	case *types.Array:
		walkGobType(pass, u.Elem(), path+"[n]", pos, seen)
	case *types.Pointer:
		walkGobType(pass, u.Elem(), path, pos, seen)
	case *types.Map:
		walkGobType(pass, u.Key(), path+"(key)", pos, seen)
		walkGobType(pass, u.Elem(), path+"(value)", pos, seen)
	case *types.Signature:
		pass.Reportf(pos, "gob spec field %s has func type %s: closures cannot cross the process boundary, carry constructor inputs instead", path, typeString(pass, t))
	case *types.Chan:
		pass.Reportf(pos, "gob spec field %s has chan type %s: channels cannot cross the process boundary", path, typeString(pass, t))
	case *types.Interface:
		pass.Reportf(pos, "gob spec field %s is an interface (%s): every concrete type needs gob.Register and an identical registry in the worker; prefer a concrete field", path, typeString(pass, t))
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			pass.Reportf(pos, "gob spec field %s is unsafe.Pointer: not encodable", path)
		}
	}
}

// flagNilChecks reports `x.F == nil` / `x.F != nil` where x is a spec
// type and F a slice or map field: the distinction the comparison draws
// does not survive a gob round-trip.
func flagNilChecks(pass *Pass, specs map[*types.Named]token.Pos) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			var sel *ast.SelectorExpr
			switch {
			case isNilIdent(pass.Info, be.Y):
				sel, _ = ast.Unparen(be.X).(*ast.SelectorExpr)
			case isNilIdent(pass.Info, be.X):
				sel, _ = ast.Unparen(be.Y).(*ast.SelectorExpr)
			}
			if sel == nil {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			recv := namedOrigin(s.Recv())
			if recv == nil {
				return true
			}
			if _, isSpec := specs[recv]; !isSpec {
				return true
			}
			switch s.Obj().Type().Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(be.Pos(), "nil check on gob-roundtripped field %s.%s: gob decodes empty %s as nil, compare len()==0 instead",
					recv.Obj().Name(), s.Obj().Name(), kindWord(s.Obj().Type()))
			}
			return true
		})
	}
}

// kindWord names slice/map for the nil-check message.
func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "maps"
	}
	return "slices"
}
