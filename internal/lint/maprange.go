package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange guards the byte-identity contract against Go's randomized
// map iteration order. In the shuffle engine, the driver packages, the
// planner, and the serving tiers, anything that flows out of a
// range-over-map in iteration order — emitted records, encoded wire
// bytes, appended result slices, float accumulations — produces
// different bytes on different runs. The analyzer flags every
// range-over-map in those packages unless the loop body is provably
// order-insensitive: writes into other maps, integer accumulation
// (commutative in exact arithmetic, unlike float rounding), deletes,
// and appends to slices that the enclosing function later sorts.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "no order-dependent iteration over maps on paths that feed Emit, wire " +
		"encoding, or JSON responses: collect keys, sort, then iterate",
	AppliesTo: inPackages(
		"internal/mapreduce",
		"internal/driver", "internal/pgbj", "internal/hbrj", "internal/naive",
		"internal/theta", "internal/zknn", "internal/lsh", "internal/topk",
		"internal/rangejoin", "internal/setsim",
		"internal/planner", "internal/serve", "internal/shard",
		"internal/obs",
	),
	Run: runMapRange,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			sorted := sortedSlices(pass, body)
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				c := &mapRangeCheck{pass: pass, loop: rs, sorted: sorted}
				if reason := c.bodyReason(rs.Body); reason != "" {
					pass.Reportf(rs.Pos(), "range over map has order-dependent effect (%s): iteration order is randomized and breaks byte-identity; iterate sorted keys instead", reason)
				}
				return true
			})
		})
	}
}

// sortedSlices collects the objects of every slice passed to a sort
// call (sort.*, slices.Sort*) anywhere in the function: appending to
// one of these inside a map loop is order-safe because the sort
// re-establishes a canonical order before use.
func sortedSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootIdentObj(pass.Info, ast.Unparen(arg)); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// mapRangeCheck validates one range-over-map body statement by
// statement. The empty reason string means order-safe.
type mapRangeCheck struct {
	pass   *Pass
	loop   *ast.RangeStmt
	sorted map[types.Object]bool
}

// bodyReason returns "" when every statement in the block is
// order-insensitive, else a one-phrase description of the first
// offender.
func (c *mapRangeCheck) bodyReason(b *ast.BlockStmt) string {
	for _, s := range b.List {
		if r := c.stmtReason(s); r != "" {
			return r
		}
	}
	return ""
}

func (c *mapRangeCheck) stmtReason(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignReason(s)
	case *ast.IncDecStmt:
		if isBareIdent(s.X) || c.localTo(s.X) {
			if isIntegerType(c.pass.Info.Types[s.X].Type) {
				return ""
			}
			return fmt.Sprintf("%s on non-integer accumulator", s.Tok)
		}
		if isIntegerType(c.pass.Info.Types[s.X].Type) {
			return ""
		}
		return "non-integer increment through a field path"
	case *ast.IfStmt:
		if r := c.exprReason(s.Cond); r != "" {
			return r
		}
		if s.Init != nil {
			if r := c.stmtReason(s.Init); r != "" {
				return r
			}
		}
		if r := c.bodyReason(s.Body); r != "" {
			return r
		}
		if s.Else != nil {
			return c.stmtReason(s.Else)
		}
		return ""
	case *ast.BlockStmt:
		return c.bodyReason(s)
	case *ast.ForStmt:
		for _, sub := range []ast.Stmt{s.Init, s.Post} {
			if sub != nil {
				if r := c.stmtReason(sub); r != "" {
					return r
				}
			}
		}
		if s.Cond != nil {
			if r := c.exprReason(s.Cond); r != "" {
				return r
			}
		}
		return c.bodyReason(s.Body)
	case *ast.RangeStmt:
		if r := c.exprReason(s.X); r != "" {
			return r
		}
		return c.bodyReason(s.Body)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if builtinName(c.pass.Info, call) == "delete" {
				return ""
			}
			return "call to " + callName(call)
		}
		return "expression statement"
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return ""
		}
		return s.Tok.String() + " out of the loop"
	case *ast.DeclStmt:
		return ""
	case *ast.ReturnStmt:
		return "return from inside the loop picks a random element"
	case *ast.SwitchStmt:
		if s.Tag != nil {
			if r := c.exprReason(s.Tag); r != "" {
				return r
			}
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, sub := range cc.Body {
					if r := c.stmtReason(sub); r != "" {
						return r
					}
				}
			}
		}
		return ""
	default:
		return fmt.Sprintf("%T in loop body", s)
	}
}

// assignReason classifies one assignment inside the loop.
func (c *mapRangeCheck) assignReason(s *ast.AssignStmt) string {
	for _, rhs := range s.Rhs {
		if r := c.exprReason(rhs); r != "" {
			return r
		}
	}
	switch s.Tok {
	case token.DEFINE:
		return "" // fresh locals scoped to one iteration
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if r := c.plainAssignReason(lhs, rhsFor(s, i)); r != "" {
				return r
			}
		}
		return ""
	default: // op-assign: += etc — commutative only over integers
		lhs := s.Lhs[0]
		if !isBareIdent(lhs) && !c.mapIndexLHS(lhs) {
			if !c.localTo(lhs) {
				return "compound assignment through a field path"
			}
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
			if isIntegerType(c.pass.Info.Types[lhs].Type) {
				return ""
			}
			return fmt.Sprintf("%s accumulation on %s is iteration-order dependent", s.Tok, typeString(c.pass, c.pass.Info.Types[lhs].Type))
		default:
			return s.Tok.String() + " is not commutative"
		}
	}
}

// rhsFor pairs LHS i with its RHS (nil for tuple assignment).
func rhsFor(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == len(s.Lhs) {
		return s.Rhs[i]
	}
	return nil
}

// plainAssignReason classifies `lhs = rhs` with Tok == ASSIGN.
func (c *mapRangeCheck) plainAssignReason(lhs, rhs ast.Expr) string {
	switch {
	case isBlank(lhs):
		return ""
	case c.mapIndexLHS(lhs):
		return "" // writes into a map are order-insensitive
	case c.localTo(lhs):
		return "" // loop-local storage
	case isBareIdent(lhs):
		// `s = append(s, ...)` survives if s is sorted later.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(c.pass.Info, call) == "append" {
			obj := rootIdentObj(c.pass.Info, lhs)
			if obj != nil && c.sorted[obj] {
				return ""
			}
			return fmt.Sprintf("append to %s in map order without a later sort", exprName(lhs))
		}
		return fmt.Sprintf("last-writer-wins assignment to %s", exprName(lhs))
	default:
		return fmt.Sprintf("write through %s in map order", exprName(lhs))
	}
}

// mapIndexLHS reports whether lhs indexes into a map.
func (c *mapRangeCheck) mapIndexLHS(lhs ast.Expr) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := c.pass.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// localTo reports whether the lvalue's root object is declared inside
// the loop body (per-iteration storage, invisible outside).
func (c *mapRangeCheck) localTo(e ast.Expr) bool {
	obj := rootIdentObj(c.pass.Info, e)
	return obj != nil && obj.Pos() >= c.loop.Pos() && obj.Pos() <= c.loop.End()
}

// exprReason scans an expression for effectful calls: any call other
// than a handful of pure builtins could emit, encode, or write in
// iteration order.
func (c *mapRangeCheck) exprReason(e ast.Expr) string {
	var reason string
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch builtinName(c.pass.Info, call) {
		case "len", "cap", "append", "min", "max", "make", "new", "delete", "copy":
			return true
		}
		if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		reason = "call to " + callName(call)
		return false
	})
	return reason
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a call's function expression for messages.
func callName(call *ast.CallExpr) string {
	return exprName(call.Fun)
}

// exprName renders a short dotted name for an expression.
func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprName(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprName(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprName(x.X)
	case *ast.CallExpr:
		return exprName(x.Fun) + "()"
	default:
		return "expression"
	}
}
