package lint

import (
	"strings"
	"testing"
)

// TestLoadTypeChecks exercises the real loader pipeline — go list
// -export, source parsing, type-checking against export data — on this
// package itself, and pins that the full suite is clean on it (knnlint
// gates the whole repo in CI; the lint package must hold itself to the
// same rules).
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := Load("knnjoin/internal/lint")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("package %s loaded without types or syntax", p.PkgPath)
	}
	if p.Types.Name() != "lint" {
		t.Fatalf("loaded package named %q, want lint", p.Types.Name())
	}
	// Cross-package types must resolve through export data: the loader
	// itself uses go/types, so the type-checked package's imports
	// include it.
	found := false
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "go/types" {
			found = true
		}
	}
	if !found {
		t.Error("import go/types not resolved through export data")
	}
}

// TestSuiteCleanOnLintPackage runs every analyzer through the public
// Run entry point on this package and requires zero findings — the
// same invocation shape cmd/knnlint uses.
func TestSuiteCleanOnLintPackage(t *testing.T) {
	diags, err := Run(All, "knnjoin/internal/lint")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s: %s: %s", d.Pos, d.Analyzer, d.Message)
	}
}

// TestRunCLIUnknownPattern pins the loader's error path: a bad pattern
// must surface as a load failure (exit 2), not a silent clean run.
func TestRunCLIUnknownPattern(t *testing.T) {
	var sb strings.Builder
	if code := RunCLI(&sb, All, []string{"./doesnotexist/..."}); code != 2 {
		t.Fatalf("RunCLI on bad pattern = %d, want 2 (output: %s)", code, sb.String())
	}
}
