package lint

// The fixture harness: an analysistest-style runner on the standard
// library. Each analyzer owns a directory under testdata/src/<name>/
// holding one or more fixture packages; packages named in the
// runFixture call are analyzed, every other sibling directory is a
// dependency stub type-checked first and made importable by its
// directory name. Expected findings are `// want "regex"` comments on
// the offending line, exactly like x/tools analysistest.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"
)

// fixtureImporter resolves fixture-local packages by directory name and
// falls back to compiling the standard library from source (the only
// importer that works offline without export data for ad-hoc trees).
type fixtureImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	return fi.std.Import(path)
}

// checkFixturePkg parses and type-checks one fixture package directory.
func checkFixturePkg(t *testing.T, fset *token.FileSet, imp *fixtureImporter, dir, name string) (*types.Package, []*ast.File, *types.Info) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture package %s has no Go files", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", name, err)
	}
	return pkg, files, info
}

// wantRe extracts the quoted regexes from a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants indexes every `// want` comment by file:line, one entry
// per quoted regex.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := regexp.MustCompile(`^//\s*want\s+(.*)$`).FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					wants[key] = append(wants[key], regexp.MustCompile(pat))
				}
			}
		}
	}
	return wants
}

// runFixture type-checks the fixture tree for analyzer a and verifies
// its diagnostics against the want comments in the analyzed packages
// (default: the package named "a").
func runFixture(t *testing.T, a *Analyzer, fixture string, analyzed ...string) {
	t.Helper()
	if len(analyzed) == 0 {
		analyzed = []string{"a"}
	}
	root := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read fixture root %s: %v", root, err)
	}
	isAnalyzed := map[string]bool{}
	for _, name := range analyzed {
		isAnalyzed[name] = true
	}

	fset := token.NewFileSet()
	imp := &fixtureImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
	// Dependency stubs first, then the analyzed packages, so imports by
	// directory name resolve.
	var depDirs, targetDirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if isAnalyzed[e.Name()] {
			targetDirs = append(targetDirs, e.Name())
		} else {
			depDirs = append(depDirs, e.Name())
		}
	}
	sort.Strings(depDirs)
	for _, name := range depDirs {
		pkg, _, _ := checkFixturePkg(t, fset, imp, filepath.Join(root, name), name)
		imp.local[name] = pkg
	}

	var diags []Diagnostic
	for _, name := range targetDirs {
		pkg, files, info := checkFixturePkg(t, fset, imp, filepath.Join(root, name), name)
		imp.local[name] = pkg
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)

		wants := collectWants(t, fset, files)
		for _, d := range diags {
			// A want sits on the finding's line, or on the line below
			// when a same-line comment would change the program under
			// test (a trailing comment on a var spec IS a doc comment,
			// so the doccomment fixtures push the want past the decl).
			key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
			below := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line+1)
			matched := false
			for _, k := range []string{key, below} {
				ws := wants[k]
				for i, w := range ws {
					if w.MatchString(d.Message) {
						wants[k] = append(ws[:i], ws[i+1:]...)
						matched = true
						break
					}
				}
				if matched {
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Analyzer, d.Message)
			}
		}
		for key, ws := range wants {
			for _, w := range ws {
				t.Errorf("missing diagnostic at %s: no %s finding matched %q", key, a.Name, w)
			}
		}
		diags = diags[:0]
	}
}
