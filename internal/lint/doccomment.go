package lint

import (
	"go/ast"
	"strings"
)

// exportedDocPaths lists the package-path suffixes (module root included
// as "knnjoin") whose exported identifiers must all carry doc comments —
// the API-bearing packages formerly enforced by cmd/doccheck, plus this
// lint package itself. Everything else only needs a package comment.
var exportedDocPaths = map[string]bool{
	"knnjoin":            true,
	"internal/mapreduce": true,
	"internal/driver":    true,
	"internal/dfs":       true,
	"internal/codec":     true,
	"internal/vector":    true,
	"internal/grouping":  true,
	"internal/serve":     true,
	"internal/vindex":    true,
	"internal/planner":   true,
	"internal/shard":     true,
	"internal/lint":      true,
	"internal/obs":       true,
}

// DocComment is the documentation gate, folded in from cmd/doccheck so
// the doc rules have exactly one implementation behind one driver. Rule
// one: every package carries a package comment on at least one non-test
// file. Rule two: in the API-bearing packages, every exported
// identifier has a doc comment (a comment on a const/var block covers
// its members, the stdlib convention for enum-style groups).
var DocComment = &Analyzer{
	Name: "doccomment",
	Doc: "every package has a package comment; exported identifiers in the " +
		"API-bearing packages (module root, runtime core under internal/) have " +
		"doc comments",
	Run: runDocComment,
}

// wantsExportedDocs reports whether the package must document every
// exported identifier. Single-segment paths are fixture packages from
// the analysistest harness (and the module root), which opt in so the
// rule stays testable.
func wantsExportedDocs(pkgPath string) bool {
	if !strings.Contains(pkgPath, "/") {
		return true
	}
	for suffix := range exportedDocPaths {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

func runDocComment(pass *Pass) {
	hasPkgDoc := false
	for _, f := range pass.Files {
		if hasDoc(f.Doc) {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Package, "package %s has no package comment", pass.Pkg.Name())
	}
	if !wantsExportedDocs(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		checkExportedDocs(pass, f)
	}
}

// hasDoc reports whether a doc comment group carries actual text.
func hasDoc(g *ast.CommentGroup) bool {
	return g != nil && strings.TrimSpace(g.Text()) != ""
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are internal API and exempt).
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return ast.IsExported(x.Name)
		default:
			return true
		}
	}
}

// checkExportedDocs walks one file and reports exported declarations
// without doc comments, mirroring the retired cmd/doccheck rules.
func checkExportedDocs(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if !hasDoc(d.Doc) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				pass.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok.String() {
			case "type":
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if !hasDoc(ts.Doc) && !hasDoc(d.Doc) {
						pass.Reportf(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					}
				}
			case "const", "var":
				// A doc comment on the block covers every member.
				if hasDoc(d.Doc) {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, name := range vs.Names {
						if !name.IsExported() {
							continue
						}
						if !hasDoc(vs.Doc) && !hasDoc(vs.Comment) {
							pass.Reportf(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
}
