package lint

import (
	"go/ast"
	"go/types"
)

// queryPureRoots names the vindex.Index entry points that concurrent
// queries hit: the public query API, the batch layer, and the exported
// route.go walk pieces the shard router replays. Everything reachable
// from these inside the package must be read-only on the receiver —
// mutating shared index state from a query was exactly the PR-4 data
// race (per-query counters lived on the Index).
var queryPureRoots = map[string]bool{
	"KNN": true, "Range": true,
	"KNNWithStats": true, "RangeWithStats": true,
	"KNNBatch": true, "KNNBatchWithStats": true,
	"AssignQuery": true, "StartingBound": true, "QueryOrder": true,
	"RouteStep": true, "KNNStep": true, "FinishKNN": true, "RangeScan": true,
	"PartitionLen": true, "Pivots": true, "Metric": true,
	"Len": true, "Dim": true, "NumPartitions": true, "Kernel": true,
}

// QueryPure checks that the vindex query path never writes receiver
// state. It builds the intra-package call graph over Index methods,
// marks everything reachable from the query-path roots, and flags any
// assignment, increment, or alias-mediated write whose storage roots at
// the receiver. Per-query accounting belongs in returned Stats values
// (the PR-4 fix), not on the shared index.
var QueryPure = &Analyzer{
	Name: "querypure",
	Doc: "query-path methods on vindex.Index (KNNWithStats, RangeWithStats, the " +
		"route.go walk pieces, and everything they call) must not write receiver " +
		"fields: queries run concurrently on one shared index",
	AppliesTo: inPackages("internal/vindex"),
	Run:       runQueryPure,
}

// indexMethod is one method declared on Index, with its receiver object
// for write-rooting checks.
type indexMethod struct {
	decl *ast.FuncDecl
	recv types.Object
}

func runQueryPure(pass *Pass) {
	if pass.Pkg.Name() != "vindex" {
		return
	}
	methods := map[string]*indexMethod{}
	for _, f := range pass.Files {
		funcBodies(f, func(decl *ast.FuncDecl, _ *ast.BlockStmt) {
			if decl.Recv == nil || len(decl.Recv.List) == 0 {
				return
			}
			named := namedOrigin(pass.Info.Types[decl.Recv.List[0].Type].Type)
			if named == nil || named.Obj().Name() != "Index" {
				return
			}
			m := &indexMethod{decl: decl}
			if names := decl.Recv.List[0].Names; len(names) > 0 {
				m.recv = pass.Info.ObjectOf(names[0])
			}
			methods[decl.Name.Name] = m
		})
	}

	// Reachability over the intra-package receiver call graph: a call
	// `ix.helper(...)` inside a query-path method pulls helper into the
	// checked set.
	reach := map[string]bool{}
	var mark func(name string)
	mark = func(name string) {
		m, ok := methods[name]
		if !ok || reach[name] {
			return
		}
		reach[name] = true
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if namedOrigin(s.Recv()) != nil && namedOrigin(s.Recv()).Obj().Name() == "Index" {
					mark(sel.Sel.Name)
				}
			}
			return true
		})
	}
	for name := range queryPureRoots {
		mark(name)
	}

	for name := range reach {
		checkPureMethod(pass, methods[name])
	}
}

// checkPureMethod flags every write whose storage roots at the method's
// receiver, directly or through a one-hop alias of a receiver-reachable
// pointer, slice, or map.
func checkPureMethod(pass *Pass, m *indexMethod) {
	if m.recv == nil || m.decl.Body == nil {
		return
	}
	name := m.decl.Name.Name

	// tainted holds locals that alias receiver-reachable mutable
	// storage: `sum := ix.sum` makes sum.X = ... a receiver write too.
	tainted := map[types.Object]bool{m.recv: true}
	rootsAtReceiver := func(e ast.Expr) bool {
		if isBareIdent(e) {
			return false // rebinding a local never touches shared state
		}
		obj := rootIdentObj(pass.Info, e)
		return obj != nil && tainted[obj]
	}

	// Two passes so aliases of aliases settle without a full fixpoint
	// (the query path never nests deeper in practice).
	for i := 0; i < 2; i++ {
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for j, lhs := range as.Lhs {
				if j >= len(as.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := ast.Unparen(as.Rhs[j])
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // results of calls are fresh values
				}
				obj := pass.Info.ObjectOf(id)
				src := rootIdentObj(pass.Info, rhs)
				if obj == nil || src == nil || !tainted[src] || src == obj {
					continue
				}
				switch pass.Info.Types[as.Rhs[j]].Type.Underlying().(type) {
				case *types.Pointer, *types.Slice, *types.Map:
					tainted[obj] = true
				}
			}
			return true
		})
	}

	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if rootsAtReceiver(lhs) {
					pass.Reportf(lhs.Pos(), "query-path method %s writes receiver state %s: queries share one Index across goroutines, return per-query values instead", name, exprName(lhs))
				}
			}
		case *ast.IncDecStmt:
			if rootsAtReceiver(s.X) {
				pass.Reportf(s.Pos(), "query-path method %s mutates receiver counter %s: per-query accounting belongs in Stats (the PR-4 race class)", name, exprName(s.X))
			}
		}
		return true
	})
}
