package lint

import "testing"

// Each analyzer must catch its seeded violation and stay silent on the
// compliant variant in the same fixture tree.

func TestGobSpecFixture(t *testing.T)    { runFixture(t, GobSpec, "gobspec") }
func TestMapRangeFixture(t *testing.T)   { runFixture(t, MapRange, "maprange") }
func TestSqrtFreeFixture(t *testing.T)   { runFixture(t, SqrtFree, "sqrtfree") }
func TestQueryPureFixture(t *testing.T)  { runFixture(t, QueryPure, "querypure", "vindex") }
func TestAtomicSnapFixture(t *testing.T) { runFixture(t, AtomicSnap, "atomicsnap") }
func TestDocCommentFixture(t *testing.T) { runFixture(t, DocComment, "doccomment", "a", "b") }

// TestAnalyzerScopes pins the driver-side package filters: the
// byte-identity analyzers watch the shuffle engine and serving tiers,
// and none of them fire on unrelated utility packages.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		want     bool
	}{
		{MapRange, "knnjoin/internal/mapreduce", true},
		{MapRange, "knnjoin/internal/serve", true},
		{MapRange, "knnjoin/internal/stats", false},
		{SqrtFree, "knnjoin/internal/vector", true},
		{SqrtFree, "knnjoin/internal/planner", false},
		{QueryPure, "knnjoin/internal/vindex", true},
		{QueryPure, "knnjoin/internal/serve", false},
		{AtomicSnap, "knnjoin/internal/shard", true},
		{AtomicSnap, "knnjoin/internal/vector", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
	for _, a := range All {
		if a.AppliesTo == nil {
			continue
		}
		if a.AppliesTo("knnjoin/internal/doesnotexist") {
			t.Errorf("%s applies to an unknown package", a.Name)
		}
	}
}

// TestByName pins the name → analyzer mapping the -only flag and the
// allow directives rely on.
func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) returned an analyzer")
	}
}
