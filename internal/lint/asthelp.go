package lint

import (
	"go/ast"
	"go/types"
)

// rootExpr strips selectors, index expressions, parens, and derefs off
// an lvalue and returns the innermost expression — the object whose
// storage the lvalue ultimately reaches. `ix.sum.S[j].Count` roots at
// `ix`; `f().x` roots at the call.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// rootIdentObj resolves the lvalue's root to its declared object, or
// nil when the root is not a plain identifier.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := rootExpr(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// isBareIdent reports whether the lvalue is a plain identifier (a local
// rebind, which touches no shared storage) rather than a field, index,
// or deref path into an object.
func isBareIdent(e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	_, ok := e.(*ast.Ident)
	return ok
}

// isIntegerType reports whether t's core type is an integer — the only
// accumulator type whose += / ++ reductions are iteration-order
// independent (float rounding is not associative, strings concatenate
// in order).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through selectors and instantiations), or nil for builtins,
// conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// builtinName returns the name of the builtin a call invokes ("append",
// "len", ...), or "" when the callee is not a predeclared builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// namedOrigin unwraps pointers and returns the (generic origin of the)
// named type behind t, or nil.
func namedOrigin(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		if a, ok := t.(*types.Alias); ok {
			return namedOrigin(types.Unalias(a))
		}
		return nil
	}
	return n.Origin()
}

// isAtomicPointer reports whether t (possibly behind a pointer) is
// sync/atomic.Pointer[E], returning the element type when it is.
func isAtomicPointer(t types.Type) (elem types.Type, ok bool) {
	n := namedOrigin(t)
	if n == nil {
		return nil, false
	}
	obj := n.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	// Recover the instantiated element from the original (possibly
	// instantiated) type rather than the origin.
	if p, okp := t.Underlying().(*types.Pointer); okp {
		t = p.Elem()
	}
	named, okn := t.(*types.Named)
	if !okn || named.TypeArgs().Len() != 1 {
		return nil, false
	}
	return named.TypeArgs().At(0), true
}

// funcBodies yields every function or method body in the file together
// with its declaration, including function literals nested inside.
func funcBodies(f *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd, fd.Body)
	}
}
