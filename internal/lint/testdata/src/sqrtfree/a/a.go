// Package a seeds the squared-distance contract for the sqrtfree
// analyzer: scans compare in squared space, so any math.Sqrt is a
// finding until an emit site whitelists it.
package a

import "math"

// scanSquared keeps the comparison in squared space: clean.
func scanSquared(rows [][]float64, q []float64) float64 {
	best := math.Inf(1)
	for _, r := range rows {
		var s float64
		for j := range r {
			d := r[j] - q[j]
			s += d * d
		}
		if s < best {
			best = s
		}
	}
	return best
}

// scanLeaky converts to true distance inside the hot loop.
func scanLeaky(rows [][]float64, q []float64) float64 {
	best := math.Inf(1)
	for _, r := range rows {
		var s float64
		for j := range r {
			d := r[j] - q[j]
			s += d * d
		}
		if t := math.Sqrt(s); t < best { // want "math.Sqrt on a distance path"
			best = t
		}
	}
	return best
}
