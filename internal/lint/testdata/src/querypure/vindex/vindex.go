// Package vindex mirrors the real query path for the querypure
// analyzer: an Index queried concurrently, whose query-path methods
// must keep their accounting in returned values.
package vindex

// Stats is per-query accounting, returned not stored.
type Stats struct{ DistComputations int64 }

type summary struct{ Scans int }

// Index is the shared structure concurrent queries hit.
type Index struct {
	DistCount int64
	sum       *summary
	kernel    int
}

// KNNWithStats is a query-path root that mutates the receiver: the
// PR-4 race, re-seeded.
func (ix *Index) KNNWithStats(q []float64, k int) Stats {
	ix.DistCount++ // want "mutates receiver counter"
	return Stats{DistComputations: 1}
}

// RangeWithStats stays pure: accounting lives in the return value.
func (ix *Index) RangeWithStats(q []float64, radius float64) Stats {
	var st Stats
	st.DistComputations += int64(len(q))
	return st
}

// StartingBound reaches a helper that writes through an alias.
func (ix *Index) StartingBound(q []float64, k int) float64 {
	ix.bump()
	return 0
}

// bump is unexported but reachable from a query-path root, and writes
// shared state through a one-hop alias of a receiver field.
func (ix *Index) bump() {
	s := ix.sum
	s.Scans++ // want "mutates receiver counter"
}

// SetKernel is not on the query path; configuration writes are fine.
func (ix *Index) SetKernel(k int) { ix.kernel = k }
