// Package a seeds order-dependent map loops and their order-safe
// counterparts for the maprange analyzer.
package a

import "sort"

func emit(k string, v int) {}

// bad feeds emit in randomized iteration order.
func bad(m map[string]int) {
	for k, v := range m { // want "call to emit"
		emit(k, v)
	}
}

// badAppend collects results in map order and never re-sorts.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "append to out in map order without a later sort"
		out = append(out, k)
	}
	return out
}

// badFloat accumulates floats, whose rounding is order-dependent.
func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulation on float64 is iteration-order dependent"
		sum += v
	}
	return sum
}

// badLastWriter keeps whichever element iterates last.
func badLastWriter(m map[string]int) int {
	var last int
	for _, v := range m { // want "last-writer-wins assignment to last"
		last = v
	}
	return last
}

// badReturn returns a random element.
func badReturn(m map[string]int) int {
	for _, v := range m { // want "return from inside the loop"
		return v
	}
	return 0
}

// goodSorted collects keys and re-establishes a canonical order.
func goodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodCount is a commutative integer reduction.
func goodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n += v
		}
	}
	return n
}

// goodInvert writes into another map; maps have no order to corrupt.
func goodInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// goodLocal keeps all effects in per-iteration locals.
func goodLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		sub := 0
		for _, v := range vs {
			sub += v
		}
		total += sub
	}
	return total
}
