// Package a seeds one wire-safe spec and every gob hazard the gobspec
// analyzer knows about.
package a

import "mapreduce"

// goodSpec is wire-safe: exported plain-data fields only.
type goodSpec struct {
	Input  string
	Pivots [][]float64
	K      int
}

var goodKind = mapreduce.DefineKind("good", buildGood)

func buildGood(s goodSpec) *mapreduce.Job { return &mapreduce.Job{Name: s.Input} }

// badSpec carries the silent wire hazards: a dropped unexported field
// and two unencodable types.
type badSpec struct {
	Input string
	seed  int64
	Hook  func() error
	Quit  chan int
}

var badKind = mapreduce.DefineKind("bad", buildBad) // want "seed is unexported" "Hook has func type" "Quit has chan type"

func buildBad(s badSpec) *mapreduce.Job { return &mapreduce.Job{Name: s.Input} }

// nested hides a hazard one level down the type graph.
type nested struct {
	Inner innerSpec
}

type innerSpec struct {
	Notify func()
}

var nestedKind = mapreduce.DefineKind("nested", buildNested) // want "Inner.Notify has func type"

func buildNested(s nested) *mapreduce.Job { return &mapreduce.Job{} }

// nilCheck draws the nil-vs-empty distinction gob erases on the wire.
func nilCheck(s goodSpec) bool {
	return s.Pivots == nil // want "nil check on gob-roundtripped field"
}

// lenCheck is the safe way to test emptiness after a round-trip.
func lenCheck(s goodSpec) bool {
	return len(s.Pivots) == 0
}
