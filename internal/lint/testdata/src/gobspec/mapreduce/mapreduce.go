// Package mapreduce stubs the real engine's job-kind registry for the
// gobspec fixtures: the analyzer matches DefineKind by name and
// defining-package name, so this mirror is all it needs.
package mapreduce

// Job is a stub job.
type Job struct{ Name string }

// Kind is a stub registered constructor.
type Kind[T any] struct{ name string }

// DefineKind registers build under name.
func DefineKind[T any](name string, build func(T) *Job) Kind[T] {
	_ = build
	return Kind[T]{name: name}
}
