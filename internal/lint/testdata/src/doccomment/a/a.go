package a // want "package a has no package comment"

// Documented carries a doc comment.
func Documented() {}

func Missing() {} // want "exported function Missing has no doc comment"

type Widget struct{} // want "exported type Widget has no doc comment"

// Grouped constants share the block comment.
const (
	A = iota
	B
)

var (
	Loose = 1
) // want "exported var Loose has no doc comment"
