// Package b is fully documented and yields no findings.
package b

// Exported carries a doc comment.
func Exported() {}

// Gadget carries a doc comment.
type Gadget struct{}

// Limit carries a doc comment.
const Limit = 8
