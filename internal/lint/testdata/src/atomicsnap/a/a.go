// Package a seeds the snapshot-publication discipline for the
// atomicsnap analyzer: snapshots behind an atomic.Pointer are immutable
// once published.
package a

import "sync/atomic"

type snapshot struct {
	gen  int
	objs []int
}

type server struct {
	snap atomic.Pointer[snapshot]
}

type shadowed struct {
	snap atomic.Pointer[snapshot]
	cur  *snapshot // want "plain field of snapshot type"
}

// reloadOK builds a complete replacement and publishes once: clean.
func (s *server) reloadOK(objs []int) {
	next := &snapshot{gen: 1, objs: objs}
	s.snap.Store(next)
}

// mutateLoaded writes through a Load result.
func (s *server) mutateLoaded() {
	cur := s.snap.Load()
	cur.gen++ // want "increment of published snapshot state"
}

// mutateStored keeps writing after publication.
func (s *server) mutateStored(objs []int) {
	next := &snapshot{}
	s.snap.Store(next)
	next.objs = objs // want "write to published snapshot state"
}

// mutateInline writes through an immediate Load.
func (s *server) mutateInline() {
	s.snap.Load().gen = 9 // want "mutates the live snapshot in place"
}

// readOK only reads through the snapshot: clean.
func (s *server) readOK() int {
	return s.snap.Load().gen
}

// helperOK receives a loaded snapshot and reads: clean.
func helperOK(sn *snapshot) int { return sn.gen }

// helperBad receives a loaded snapshot and writes.
func helperBad(sn *snapshot) {
	sn.gen = 2 // want "write to published snapshot state"
}
