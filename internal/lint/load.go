package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	// PkgPath is the full import path ("knnjoin/internal/pgbj").
	PkgPath string
	// Dir is the package's source directory on disk.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files holds the parsed non-test Go files, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// listEntry mirrors the `go list -json` fields the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load enumerates the packages matching patterns with the go tool,
// parses their sources, and type-checks them against the toolchain's
// export data (so cross-package types resolve without re-checking the
// whole dependency graph from source). It returns the matched packages
// in `go list` order.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFiles := map[string]string{}
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if e.Export != "" {
			exportFiles[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exportFiles)
	var pkgs []*Package
	for _, e := range targets {
		if len(e.GoFiles) == 0 {
			continue // test-only or empty directory
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", filepath.Join(e.Dir, name), err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: e.ImportPath,
			Dir:     e.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tp,
			Info:    info,
		})
	}
	return pkgs, nil
}

// newInfo allocates the full set of type-checker fact tables the
// analyzers consume (uses, selections, and generic instantiations
// included — gobspec resolves DefineKind type arguments via Instances).
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// newExportImporter returns a types.Importer that resolves import paths
// through the compiler export data files reported by `go list -export`.
func newExportImporter(fset *token.FileSet, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
