// Package lint is the project-specific static-analysis suite behind
// cmd/knnlint. It machine-checks the invariants every layer of this
// repository leans on but the compiler cannot see — the rules that, when
// silently violated, produced the historical bug classes the analyzers
// are named after:
//
//   - gobspec: structs registered through mapreduce.DefineKind must be
//     wire-safe (the PR-7 gob hazards),
//   - maprange: no order-dependent iteration over maps on paths that
//     feed Emit / wire encoding / JSON responses (byte-identity),
//   - sqrtfree: distances stay squared until emit (the PR-2 contract),
//   - querypure: vindex query paths never write shared index state
//     (the PR-4 data race),
//   - atomicsnap: state published via atomic.Pointer snapshots is never
//     mutated after publication or shadowed beside the pointer,
//   - doccomment: the documentation gates formerly enforced by
//     cmd/doccheck (package comments everywhere, exported-identifier
//     docs in the API-bearing packages).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, analysistest-style fixtures) but is built
// on the standard library only: packages are enumerated with `go list
// -deps -export -json`, target sources are type-checked against the
// toolchain's export data, and each analyzer receives parsed files plus
// full type information.
//
// Findings are suppressed site-by-site with a justified directive:
//
//	//lint:allow <analyzer>: <one-line justification>
//
// placed on the offending line or the line directly above it. A
// directive without a justification is itself an error, so the
// whitelist stays reviewable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker: a name (used in
// diagnostics and //lint:allow directives), a one-paragraph doc string,
// an optional package filter applied by the driver, and the Run
// function executed once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in output and allow directives.
	Name string
	// Doc is the one-paragraph description printed by `knnlint -help`.
	Doc string
	// AppliesTo restricts which packages the driver runs the analyzer
	// on; nil means every loaded package. Fixture tests bypass it.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass)
}

// A Pass carries one package's parsed syntax and type information to an
// analyzer's Run function, plus the Report sink for findings.
type Pass struct {
	// Analyzer is the checker this pass executes.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files holds the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
	// Report records one finding; the driver handles sorting,
	// directive suppression, and rendering.
	Report func(Diagnostic)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos is the finding's resolved file position.
	Pos token.Position
	// Message states the violated invariant and the suggested fix.
	Message string
}

// All lists every analyzer in the suite, in the order the driver runs
// them.
var All = []*Analyzer{
	GobSpec,
	MapRange,
	SqrtFree,
	QueryPure,
	AtomicSnap,
	DocComment,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// inPackages builds an AppliesTo filter matching the given package-path
// suffixes ("internal/pgbj" matches "knnjoin/internal/pgbj" and any
// module prefix; a bare module path matches exactly).
func inPackages(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}
