package lint

import (
	"go/ast"
)

// SqrtFree enforces the PR-2 squared-distance contract: under L2 every
// comparison, heap bound, and Theorem-2 window works in squared space,
// and the single square root happens at emit time. A math.Sqrt anywhere
// else in the scan kernels or the reducer hot paths is either a
// correctness hazard (mixing squared and true distances) or a per-row
// performance regression. Legitimate emit/boundary sites carry a
// //lint:allow sqrtfree directive with a one-line justification, so the
// full set of true-distance conversions is greppable.
var SqrtFree = &Analyzer{
	Name: "sqrtfree",
	Doc: "distances stay squared end-to-end: math.Sqrt only at whitelisted emit " +
		"sites (//lint:allow sqrtfree: <why>), never inside scan kernels or " +
		"reducer hot loops",
	AppliesTo: inPackages(
		"internal/vector", "internal/vindex", "internal/driver", "internal/nnheap",
		"internal/pgbj", "internal/hbrj", "internal/naive", "internal/theta",
		"internal/zknn", "internal/lsh", "internal/topk", "internal/rangejoin",
		"internal/setsim",
	),
	Run: runSqrtFree,
}

func runSqrtFree(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Name() != "Sqrt" || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
				return true
			}
			pass.Reportf(call.Pos(), "math.Sqrt on a distance path: the squared-L2 contract keeps distances squared until emit; move the sqrt to the emit site or whitelist this conversion with a justification")
			return true
		})
	}
}
