package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicSnap guards the snapshot-publication discipline the serving
// tiers rely on: state shared with in-flight queries lives behind an
// atomic.Pointer, a reload builds a complete replacement and publishes
// it with one Store, and nobody touches snapshot contents around the
// pointer. Three write patterns break that discipline without tripping
// the race detector on every schedule: mutating a loaded snapshot,
// mutating a value after storing it, and keeping a plain shadow field
// of the same snapshot type beside the pointer.
var AtomicSnap = &Analyzer{
	Name: "atomicsnap",
	Doc: "state published via atomic.Pointer snapshots must be immutable after " +
		"publication: no writes through Load results, no writes to a value after " +
		"Store(p), no plain shadow fields of the snapshot type",
	AppliesTo: inPackages("internal/serve", "internal/shard"),
	Run:       runAtomicSnap,
}

func runAtomicSnap(pass *Pass) {
	elems := snapshotElemTypes(pass)
	for _, f := range pass.Files {
		checkShadowFields(pass, f, elems)
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkSnapshotWrites(pass, decl, body, elems)
		})
	}
}

// snapshotElemTypes collects every T used as atomic.Pointer[T] anywhere
// in the package's declared struct fields or variables.
func snapshotElemTypes(pass *Pass) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	collect := func(t types.Type) {
		if elem, ok := isAtomicPointer(t); ok {
			if n := namedOrigin(elem); n != nil {
				out[n] = true
			}
		}
	}
	for _, name := range pass.Pkg.Scope().Names() {
		obj := pass.Pkg.Scope().Lookup(name)
		collect(obj.Type())
		if tn, ok := obj.(*types.TypeName); ok {
			if st, ok := tn.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					collect(st.Field(i).Type())
				}
			}
		}
	}
	return out
}

// checkShadowFields flags struct fields whose type duplicates a
// snapshot element outside its atomic.Pointer: reads through the shadow
// bypass the publication point and go stale (or race) on reload.
func checkShadowFields(pass *Pass, f *ast.File, elems map[*types.Named]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			t := pass.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if _, isAtomic := isAtomicPointer(t); isAtomic {
				continue
			}
			if named := namedOrigin(t); named != nil && elems[named] {
				pass.Reportf(field.Pos(), "plain field of snapshot type %s beside its atomic.Pointer: all reads must go through Load or they race with reload", named.Obj().Name())
			}
		}
		return true
	})
}

// checkSnapshotWrites flags writes through Load results and writes to a
// value after it was passed to Store/Swap/CompareAndSwap within the
// same function body (textual order — the publication point).
func checkSnapshotWrites(pass *Pass, decl *ast.FuncDecl, body *ast.BlockStmt, elems map[*types.Named]bool) {
	// tainted maps objects that alias published snapshot memory to the
	// position from which writes are forbidden (NoPos = everywhere).
	tainted := map[types.Object]token.Pos{}

	// Parameters typed *T for a snapshot element T are loaded snapshots
	// handed down from the caller (serve's per-request helpers).
	if decl.Type.Params != nil {
		for _, p := range decl.Type.Params.List {
			t := pass.Info.Types[p.Type].Type
			if t == nil {
				continue
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				if n := namedOrigin(ptr.Elem()); n != nil && elems[n] {
					for _, name := range p.Names {
						if obj := pass.Info.ObjectOf(name); obj != nil {
							tainted[obj] = token.NoPos
						}
					}
				}
			}
		}
	}

	isLoadCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return false
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok {
			return false
		}
		_, isAtomic := isAtomicPointer(tv.Type)
		return isAtomic
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// v := X.Load() taints v from here on.
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) && isLoadCall(rhs) {
					if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							tainted[obj] = token.NoPos
						}
					}
				}
			}
		case *ast.CallExpr:
			// X.Store(p) / Swap(p) / CompareAndSwap(old, p): p is
			// published at this point; later writes are forbidden.
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if method != "Store" && method != "Swap" && method != "CompareAndSwap" {
				return true
			}
			tv, ok := pass.Info.Types[sel.X]
			if !ok {
				return true
			}
			if _, isAtomic := isAtomicPointer(tv.Type); !isAtomic {
				return true
			}
			arg := s.Args[len(s.Args)-1]
			if obj := rootIdentObj(pass.Info, ast.Unparen(arg)); obj != nil {
				if _, already := tainted[obj]; !already {
					tainted[obj] = s.End()
				}
			}
		}
		return true
	})

	flag := func(lhs ast.Expr, verb string) {
		if isBareIdent(lhs) {
			return // rebinding the variable abandons the alias, no write
		}
		obj := rootIdentObj(pass.Info, lhs)
		if obj == nil {
			return
		}
		from, ok := tainted[obj]
		if !ok || lhs.Pos() < from {
			return
		}
		pass.Reportf(lhs.Pos(), "%s published snapshot state through %s: snapshots are immutable after Load/Store, build a replacement and publish it atomically", verb, exprName(lhs))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flag(lhs, "write to")
			}
		case *ast.IncDecStmt:
			flag(s.X, "increment of")
		}
		return true
	})

	// Direct `X.Load().field = v` (no intermediate variable).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if isLoadCall(rootExpr(lhs)) {
				pass.Reportf(lhs.Pos(), "write through %s mutates the live snapshot in place: build a replacement and Store it", exprName(lhs))
			}
		}
		return true
	})
}
