package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The full form is
//
//	//lint:allow <analyzer>: <one-line justification>
//
// and the directive covers findings of <analyzer> on its own line and
// on the line directly below (so it can sit above a statement or at the
// end of one).
const directivePrefix = "//lint:allow"

// A directive is one parsed //lint:allow comment.
type directive struct {
	// Analyzer names the suppressed analyzer.
	Analyzer string
	// Reason is the mandatory justification after the colon.
	Reason string
	// Pos is where the directive comment starts.
	Pos token.Position
}

// parseDirectives extracts every //lint:allow directive from a file's
// comments. Malformed directives (no analyzer, no justification, or an
// unknown analyzer name) are reported as diagnostics themselves so the
// whitelist cannot rot silently.
func parseDirectives(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			tail := strings.TrimPrefix(c.Text, directivePrefix)
			if tail != "" && tail[0] != ' ' && tail[0] != '\t' {
				continue // some other //lint:allowX comment
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(tail)
			name, reason, ok := strings.Cut(rest, ":")
			name = strings.TrimSpace(name)
			reason = strings.TrimSpace(reason)
			bad := func(msg string) {
				report(Diagnostic{Analyzer: "directive", Pos: pos, Message: msg})
			}
			switch {
			case name == "":
				bad("lint:allow directive names no analyzer")
			case ByName(name) == nil:
				bad("lint:allow directive names unknown analyzer " + strings.Trim(name, `"`))
			case !ok || reason == "":
				bad("lint:allow " + name + " has no justification (write //lint:allow " + name + ": <reason>)")
			default:
				out = append(out, directive{Analyzer: name, Reason: reason, Pos: pos})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive: same file,
// same analyzer, and the directive sits on d's line or the line above.
func suppressed(d Diagnostic, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.Analyzer != d.Analyzer || dir.Pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.Pos.Line == d.Pos.Line || dir.Pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
