package lint

import (
	"fmt"
	"io"
	"sort"
)

// Run loads the packages matching patterns, executes every analyzer on
// the packages its filter admits, applies //lint:allow suppression, and
// returns the surviving diagnostics in source order. Malformed allow
// directives come back as diagnostics of the pseudo-analyzer
// "directive".
func Run(analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	var dirs []directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f, report)...)
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report:   report,
			}
			a.Run(pass)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return kept, nil
}

// RunCLI is the shared command-line driver behind cmd/knnlint and the
// cmd/doccheck compatibility wrapper: run the given analyzers over the
// patterns (default ./...), print findings to w, and return the process
// exit code (0 clean, 1 findings, 2 load failure).
func RunCLI(w io.Writer, analyzers []*Analyzer, patterns []string) int {
	diags, err := Run(analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(w, "knnlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "knnlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
