// Package mux implements MuX, the multi-page index kNN join of Böhm and
// Krebs (DEXA'03; Knowl. Inf. Syst. 6(6), 2004) — references [2] and [3]
// of the paper, its earliest centralized lineage.
//
// MuX separates the two optimization goals a kNN join faces: I/O wants
// few large page reads, CPU wants small minimum bounding rectangles to
// prune against. The index therefore has two granularities — large
// "hosting pages", each holding many small "buckets" with tight MBRs.
// The join loops over R hosting pages; for each it visits S hosting
// pages in ascending MBR distance (stopping once no object in the R page
// can still improve), and inside a page it prunes bucket by bucket
// before touching objects.
//
// This implementation packs both levels with a recursive
// sort-tile-recursive pass, so the on-"disk" layout is spatially
// clustered exactly as MuX assumes. It is exact for every metric the
// repository supports.
package mux

import (
	"fmt"
	"math"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/naive"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// Options configures the MuX index geometry.
type Options struct {
	// Metric is the distance measure; default L2.
	Metric vector.Metric
	// BucketSize is the number of objects per CPU bucket. Default 32.
	BucketSize int
	// PageBuckets is the number of buckets per hosting page. Default 16
	// (≈512 objects per page at the default bucket size, the large-page
	// regime MuX argues for).
	PageBuckets int
}

func (o Options) withDefaults() (Options, error) {
	if o.BucketSize < 0 || o.PageBuckets < 0 {
		return o, fmt.Errorf("mux: negative geometry: bucket size %d, page buckets %d", o.BucketSize, o.PageBuckets)
	}
	if o.BucketSize == 0 {
		o.BucketSize = 32
	}
	if o.PageBuckets == 0 {
		o.PageBuckets = 16
	}
	return o, nil
}

// mbr is a minimum bounding rectangle.
type mbr struct {
	min, max vector.Point
}

func mbrOf(objs []codec.Object) mbr {
	m := mbr{min: objs[0].Point.Clone(), max: objs[0].Point.Clone()}
	for _, o := range objs[1:] {
		for d, v := range o.Point {
			if v < m.min[d] {
				m.min[d] = v
			}
			if v > m.max[d] {
				m.max[d] = v
			}
		}
	}
	return m
}

// gapTo writes the per-dimension gap between the rectangle and p into
// dst: zero inside the extent, else the distance to the nearer face.
func (m mbr) gapTo(dst vector.Point, p vector.Point) vector.Point {
	dst = dst[:0]
	for d, v := range p {
		switch {
		case v < m.min[d]:
			dst = append(dst, m.min[d]-v)
		case v > m.max[d]:
			dst = append(dst, v-m.max[d])
		default:
			dst = append(dst, 0)
		}
	}
	return dst
}

// gapToRect writes the per-dimension gap between two rectangles into dst.
func (m mbr) gapToRect(dst vector.Point, o mbr) vector.Point {
	dst = dst[:0]
	for d := range m.min {
		switch {
		case o.max[d] < m.min[d]:
			dst = append(dst, m.min[d]-o.max[d])
		case o.min[d] > m.max[d]:
			dst = append(dst, o.min[d]-m.max[d])
		default:
			dst = append(dst, 0)
		}
	}
	return dst
}

// bucket is the CPU-granularity unit: a tight MBR over few objects.
type bucket struct {
	mbr  mbr
	objs []codec.Object
}

// page is the I/O-granularity unit: a hosting page of buckets.
type page struct {
	mbr     mbr
	buckets []bucket
}

// Index is a MuX index: spatially packed hosting pages of buckets.
type Index struct {
	pages  []page
	metric vector.Metric
	size   int
	zero   vector.Point
}

// Build packs objs into a MuX index. An empty objs yields an empty index.
func Build(objs []codec.Object, opts Options) (*Index, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	ix := &Index{metric: opts.Metric, size: len(objs)}
	if len(objs) == 0 {
		return ix, nil
	}
	ix.zero = make(vector.Point, objs[0].Point.Dim())

	packed := append([]codec.Object(nil), objs...)
	strSort(packed, 0, opts.BucketSize)
	var buckets []bucket
	for lo := 0; lo < len(packed); lo += opts.BucketSize {
		hi := lo + opts.BucketSize
		if hi > len(packed) {
			hi = len(packed)
		}
		buckets = append(buckets, bucket{mbr: mbrOf(packed[lo:hi]), objs: packed[lo:hi]})
	}
	for lo := 0; lo < len(buckets); lo += opts.PageBuckets {
		hi := lo + opts.PageBuckets
		if hi > len(buckets) {
			hi = len(buckets)
		}
		pg := page{buckets: buckets[lo:hi], mbr: buckets[lo].mbr}
		pg.mbr.min = pg.mbr.min.Clone()
		pg.mbr.max = pg.mbr.max.Clone()
		for _, b := range buckets[lo+1 : hi] {
			for d := range pg.mbr.min {
				if b.mbr.min[d] < pg.mbr.min[d] {
					pg.mbr.min[d] = b.mbr.min[d]
				}
				if b.mbr.max[d] > pg.mbr.max[d] {
					pg.mbr.max[d] = b.mbr.max[d]
				}
			}
		}
		ix.pages = append(ix.pages, pg)
	}
	return ix, nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.size }

// Pages returns the number of hosting pages.
func (ix *Index) Pages() int { return len(ix.pages) }

// strSort orders objs spatially with a recursive sort-tile pass: sort by
// dimension d, cut into slabs sized so that the remaining dimensions can
// tile each slab down to the leaf size, recurse per slab.
func strSort(objs []codec.Object, d, leaf int) {
	if len(objs) <= leaf {
		return
	}
	dims := objs[0].Point.Dim()
	sort.SliceStable(objs, func(i, j int) bool { return objs[i].Point[d] < objs[j].Point[d] })
	if d == dims-1 {
		return // final dimension: chunking into leaves happens in Build
	}
	leaves := (len(objs) + leaf - 1) / leaf
	slabs := intRoot(leaves, dims-d)
	if slabs <= 1 {
		strSort(objs, d+1, leaf)
		return
	}
	per := (len(objs) + slabs - 1) / slabs
	for lo := 0; lo < len(objs); lo += per {
		hi := lo + per
		if hi > len(objs) {
			hi = len(objs)
		}
		strSort(objs[lo:hi], d+1, leaf)
	}
}

// intRoot returns ⌈n^(1/k)⌉ for small integers.
func intRoot(n, k int) int {
	if n <= 1 || k <= 1 {
		return n
	}
	r := 1
	for pow(r, k) < n {
		r++
	}
	return r
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out < 0 || out > 1<<40 {
			return 1 << 40
		}
	}
	return out
}

// Join computes the exact kNN join of R against the S index with MuX's
// page-then-bucket pruning loop. It returns results ordered by R object
// ID and the number of distance computations.
func Join(rObjs, sObjs []codec.Object, k int, opts Options) ([]codec.Result, int64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("mux: k must be positive, got %d", k)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, 0, err
	}
	if len(sObjs) == 0 || len(rObjs) == 0 {
		return nil, 0, nil
	}
	sIx, err := Build(sObjs, opts)
	if err != nil {
		return nil, 0, err
	}
	rIx, err := Build(rObjs, opts)
	if err != nil {
		return nil, 0, err
	}

	m := opts.Metric
	var pairs int64
	results := make([]codec.Result, 0, len(rObjs))
	gap := make(vector.Point, 0, rObjs[0].Point.Dim())

	type distPage struct {
		d  float64
		pg *page
	}
	type distBucket struct {
		d float64
		b *bucket
	}

	for rp := range rIx.pages {
		rPage := &rIx.pages[rp]
		var rs []codec.Object
		for i := range rPage.buckets {
			rs = append(rs, rPage.buckets[i].objs...)
		}
		heaps := make([]*nnheap.KHeap, len(rs))
		for i := range heaps {
			heaps[i] = nnheap.NewKHeap(k)
		}
		maxTheta := func() float64 {
			worst := 0.0
			for _, h := range heaps {
				if t := h.Threshold(maxFloat); t > worst {
					worst = t
					if t == maxFloat {
						break
					}
				}
			}
			return worst
		}

		// Visit S hosting pages in ascending MBR-to-MBR distance.
		order := make([]distPage, len(sIx.pages))
		for i := range sIx.pages {
			gap = rPage.mbr.gapToRect(gap, sIx.pages[i].mbr)
			order[i] = distPage{d: m.Dist(gap, sIx.zero), pg: &sIx.pages[i]}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].d < order[b].d })

		for _, dp := range order {
			if dp.d > maxTheta() {
				break // no r in this page can improve from farther pages
			}
			// Inside the page, visit buckets nearest-first as well.
			border := make([]distBucket, len(dp.pg.buckets))
			for i := range dp.pg.buckets {
				gap = rPage.mbr.gapToRect(gap, dp.pg.buckets[i].mbr)
				border[i] = distBucket{d: m.Dist(gap, sIx.zero), b: &dp.pg.buckets[i]}
			}
			sort.Slice(border, func(a, b int) bool { return border[a].d < border[b].d })
			for _, db := range border {
				if db.d > maxTheta() {
					break
				}
				for i, r := range rs {
					gap = db.b.mbr.gapTo(gap, r.Point)
					if m.Dist(gap, sIx.zero) > heaps[i].Threshold(maxFloat) {
						continue
					}
					for _, s := range db.b.objs {
						pairs++
						heaps[i].Push(nnheap.Candidate{ID: s.ID, Dist: m.Dist(r.Point, s.Point)})
					}
				}
			}
		}

		for i, r := range rs {
			cands := heaps[i].Sorted()
			nbs := make([]codec.Neighbor, len(cands))
			for j, c := range cands {
				nbs[j] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
			}
			results = append(results, codec.Result{RID: r.ID, Neighbors: nbs})
		}
	}
	naive.SortResults(results)
	return results, pairs, nil
}

// maxFloat is the pruning sentinel: any real distance beats it.
const maxFloat = math.MaxFloat64
