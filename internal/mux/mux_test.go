package mux

import (
	"math"
	"testing"
	"testing/quick"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/naive"
	"knnjoin/internal/vector"
)

// sameResults asserts got matches want by RID and neighbor distances
// (tied neighbors may legally swap IDs).
func sameResults(t *testing.T, got, want []codec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d: RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("r %d: %d neighbors, want %d", want[i].RID, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("r %d neighbor %d: dist %v, want %v",
					want[i].RID, j, got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
			}
		}
	}
}

func TestExactVsBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name string
		objs []codec.Object
		k    int
	}{
		{"uniform-3d", dataset.Uniform(1500, 3, 100, 1), 10},
		{"forest-10d", dataset.Forest(1200, 2), 5},
		{"osm-2d", dataset.OSM(1500, 3), 15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, _ := naive.BruteForce(tc.objs, tc.objs, tc.k, vector.L2)
			got, _, err := Join(tc.objs, tc.objs, tc.k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, got, want)
		})
	}
}

func TestExactDistinctRAndS(t *testing.T) {
	rObjs := dataset.Uniform(700, 4, 100, 4)
	sObjs := dataset.Uniform(900, 4, 100, 5)
	want, _ := naive.BruteForce(rObjs, sObjs, 7, vector.L2)
	got, _, err := Join(rObjs, sObjs, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

func TestExactOtherMetrics(t *testing.T) {
	objs := dataset.Uniform(800, 3, 100, 6)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		want, _ := naive.BruteForce(objs, objs, 6, m)
		got, _, err := Join(objs, objs, 6, Options{Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want)
	}
}

func TestPruningCutsWork(t *testing.T) {
	// Clustered data is where MBR pruning shines: most page pairs are far
	// apart and never touched.
	objs := dataset.OSM(4000, 7)
	_, pairs, err := Join(objs, objs, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cross := int64(len(objs)) * int64(len(objs))
	if pairs >= cross/2 {
		t.Fatalf("MuX computed %d of %d pairs — pruning ineffective", pairs, cross)
	}
}

func TestGeometryOptions(t *testing.T) {
	objs := dataset.Uniform(1000, 3, 100, 8)
	want, _ := naive.BruteForce(objs, objs, 5, vector.L2)
	for _, opt := range []Options{
		{BucketSize: 1, PageBuckets: 1},
		{BucketSize: 7, PageBuckets: 3},
		{BucketSize: 500, PageBuckets: 500},
	} {
		got, _, err := Join(objs, objs, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want)
	}
	if _, err := Build(objs, Options{BucketSize: -1}); err == nil {
		t.Error("negative bucket size accepted")
	}
}

func TestKLargerThanS(t *testing.T) {
	rObjs := dataset.Uniform(60, 2, 100, 9)
	sObjs := dataset.Uniform(4, 2, 100, 10)
	got, _, err := Join(rObjs, sObjs, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rObjs) {
		t.Fatalf("got %d results, want %d", len(got), len(rObjs))
	}
	for _, res := range got {
		if len(res.Neighbors) != len(sObjs) {
			t.Fatalf("r %d: %d neighbors, want all %d", res.RID, len(res.Neighbors), len(sObjs))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if _, _, err := Join(nil, nil, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	got, pairs, err := Join(nil, dataset.Uniform(5, 2, 10, 1), 3, Options{})
	if err != nil || got != nil || pairs != 0 {
		t.Errorf("empty R: got=%v pairs=%d err=%v", got, pairs, err)
	}
	got, pairs, err = Join(dataset.Uniform(5, 2, 10, 1), nil, 3, Options{})
	if err != nil || got != nil || pairs != 0 {
		t.Errorf("empty S: got=%v pairs=%d err=%v", got, pairs, err)
	}
	single := []codec.Object{{ID: 42, Point: vector.Point{1, 2}}}
	got, _, err = Join(single, single, 1, Options{})
	if err != nil || len(got) != 1 || got[0].Neighbors[0].ID != 42 || got[0].Neighbors[0].Dist != 0 {
		t.Errorf("singleton self-join: %+v err=%v", got, err)
	}
}

func TestBuildStructure(t *testing.T) {
	objs := dataset.Uniform(1000, 3, 100, 11)
	ix, err := Build(objs, Options{BucketSize: 10, PageBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(objs) {
		t.Fatalf("index size %d, want %d", ix.Len(), len(objs))
	}
	if want := (len(objs) + 39) / 40; ix.Pages() != want {
		t.Fatalf("pages = %d, want %d", ix.Pages(), want)
	}
	// Every object lands in exactly one bucket, every bucket MBR contains
	// its objects, every page MBR contains its buckets.
	seen := make(map[int64]bool)
	for _, pg := range ix.pages {
		for _, b := range pg.buckets {
			for _, o := range b.objs {
				if seen[o.ID] {
					t.Fatalf("object %d packed twice", o.ID)
				}
				seen[o.ID] = true
				for d, v := range o.Point {
					if v < b.mbr.min[d]-1e-12 || v > b.mbr.max[d]+1e-12 {
						t.Fatalf("object %d escapes its bucket MBR on dim %d", o.ID, d)
					}
					if v < pg.mbr.min[d]-1e-12 || v > pg.mbr.max[d]+1e-12 {
						t.Fatalf("object %d escapes its page MBR on dim %d", o.ID, d)
					}
				}
			}
		}
	}
	if len(seen) != len(objs) {
		t.Fatalf("packed %d objects, want %d", len(seen), len(objs))
	}

	empty, err := Build(nil, Options{})
	if err != nil || empty.Len() != 0 || empty.Pages() != 0 {
		t.Fatalf("empty build: %+v err=%v", empty, err)
	}
}

// Property: the rect-to-point gap norm never exceeds the distance from
// the point to any object inside the rectangle — the inequality all MuX
// pruning rests on.
func TestMinDistLowerBoundQuick(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		for _, v := range []*float64{&ax, &ay, &bx, &by, &px, &py} {
			if math.IsNaN(*v) || math.IsInf(*v, 0) {
				*v = 0
			}
			*v = math.Mod(*v, 1e6)
		}
		in := []codec.Object{
			{ID: 0, Point: vector.Point{ax, ay}},
			{ID: 1, Point: vector.Point{bx, by}},
		}
		box := mbrOf(in)
		p := vector.Point{px, py}
		for _, m := range []vector.Metric{vector.L2, vector.L1, vector.LInf} {
			bound := m.Dist(box.gapTo(nil, p), vector.Point{0, 0})
			for _, o := range in {
				if bound > m.Dist(p, o.Point)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the rect-to-rect gap norm lower-bounds the distance between
// any two objects drawn from the two rectangles.
func TestRectRectLowerBoundQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		for _, v := range []*float64{&ax, &ay, &bx, &by, &cx, &cy, &dx, &dy} {
			if math.IsNaN(*v) || math.IsInf(*v, 0) {
				*v = 0
			}
			*v = math.Mod(*v, 1e6)
		}
		left := []codec.Object{{ID: 0, Point: vector.Point{ax, ay}}, {ID: 1, Point: vector.Point{bx, by}}}
		right := []codec.Object{{ID: 2, Point: vector.Point{cx, cy}}, {ID: 3, Point: vector.Point{dx, dy}}}
		lb, rb := mbrOf(left), mbrOf(right)
		for _, m := range []vector.Metric{vector.L2, vector.L1, vector.LInf} {
			bound := m.Dist(lb.gapToRect(nil, rb), vector.Point{0, 0})
			for _, a := range left {
				for _, b := range right {
					if bound > m.Dist(a.Point, b.Point)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntRoot(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{1, 3, 1}, {8, 3, 2}, {9, 2, 3}, {10, 2, 4}, {27, 3, 3}, {28, 3, 4}, {5, 1, 5},
	}
	for _, c := range cases {
		if got := intRoot(c.n, c.k); got != c.want {
			t.Errorf("intRoot(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func BenchmarkMuXJoin(b *testing.B) {
	objs := dataset.Forest(20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Join(objs, objs, 10, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
