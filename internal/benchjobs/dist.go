package benchjobs

// Distance-path micro-benchmark workloads: the PGBJ-reducer-shaped
// decode+join measured both through the legacy per-Object path (one
// codec.DecodeTagged and one Point allocation per record, Metric.Dist
// per candidate) and through the columnar path (codec.DecodeBlock once
// per group, fused squared-distance kernels, emit-time sqrt). Both
// variants run the identical candidate sets, so their outputs are
// comparable and the ns/op and allocs/op deltas isolate the
// representation change. Shared by bench_test.go and cmd/distbench so
// BENCH_dist.json records the same work `go test -bench` measures.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"knnjoin/internal/codec"
	"knnjoin/internal/driver"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/vector"
)

// DistInput encodes n Tagged wire records of dimensionality dim — one S
// partition as a reducer receives it: coordinates uniform in [0,1)^dim,
// PivotDist the distance to the origin pivot, records ascending by
// PivotDist (the shuffle's secondary-sort order).
func DistInput(n, dim int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	type row struct {
		p  vector.Point
		pd float64
	}
	rows := make([]row, n)
	for i := range rows {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		rows[i] = row{p: p, pd: norm(p)}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].pd < rows[b].pd })
	recs := make([][]byte, n)
	for i, r := range rows {
		recs[i] = codec.EncodeTagged(codec.Tagged{
			Object:    codec.Object{ID: int64(i), Point: r.p},
			Src:       codec.FromS,
			Partition: 0,
			PivotDist: r.pd,
		})
	}
	return recs
}

// DistQueries draws q query points from the same distribution.
func DistQueries(q, dim int, seed int64) []vector.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vector.Point, q)
	for i := range out {
		p := make(vector.Point, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

// DistTheta returns the Theorem-2 window half-width that admits roughly
// frac of a DistInput group per query — the reducer-realistic regime
// where windows cover a slice of each S partition, not the whole of it.
// It reads the pivot-distance spread off the (sorted) input's first and
// last records.
func DistTheta(recs [][]byte, frac float64) (float64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	first, err := codec.DecodeTagged(recs[0])
	if err != nil {
		return 0, err
	}
	last, err := codec.DecodeTagged(recs[len(recs)-1])
	if err != nil {
		return 0, err
	}
	return (last.PivotDist - first.PivotDist) * frac / 2, nil
}

// DistWindowFrac is the canonical window fraction of the join
// micro-benchmarks.
const DistWindowFrac = 0.15

// norm is the distance to the origin pivot, allocation-free so the
// measured join loops carry no benchmark-scaffolding allocations.
func norm(p vector.Point) float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// DecodeScalar decodes every record through codec.DecodeTagged — the
// pre-Block per-object path, two allocations per point. The returned
// coordinate count defeats dead-code elimination.
func DecodeScalar(recs [][]byte) (int, error) {
	var coords int
	for i, rec := range recs {
		t, err := codec.DecodeTagged(rec)
		if err != nil {
			return 0, fmt.Errorf("benchjobs: record %d: %w", i, err)
		}
		coords += t.Point.Dim()
	}
	return coords, nil
}

// DecodeBlock decodes the whole batch through codec.DecodeBlock — the
// columnar path, a constant number of allocations per group.
func DecodeBlock(recs [][]byte) (int, error) {
	blk, _, _, err := codec.DecodeBlock(recs)
	if err != nil {
		return 0, err
	}
	return len(blk.Coords), nil
}

// JoinScalar runs the PGBJ-reducer-shaped join on the per-Object path:
// decode each record into a Tagged (allocating its Point), then for each
// query apply the Theorem-2 pivot-distance window and push true L2
// distances. The returned checksum must equal JoinBlock's.
func JoinScalar(recs [][]byte, queries []vector.Point, k int, theta float64) (int64, error) {
	tags := make([]codec.Tagged, len(recs))
	for i, rec := range recs {
		t, err := codec.DecodeTagged(rec)
		if err != nil {
			return 0, fmt.Errorf("benchjobs: record %d: %w", i, err)
		}
		tags[i] = t
	}
	heap := nnheap.NewKHeap(k)
	var sink int64
	for _, q := range queries {
		qpd := norm(q)
		wlo, whi := qpd-theta, qpd+theta
		lo := sort.Search(len(tags), func(i int) bool { return tags[i].PivotDist >= wlo })
		hi := sort.Search(len(tags), func(i int) bool { return tags[i].PivotDist > whi })
		heap.Reset()
		for x := lo; x < hi; x++ {
			heap.Push(nnheap.Candidate{ID: tags[x].ID, Dist: vector.L2.Dist(q, tags[x].Point)})
		}
		cands := heap.Sorted()
		nbs := make([]codec.Neighbor, len(cands))
		for i, c := range cands {
			nbs[i] = codec.Neighbor{ID: c.ID, Dist: c.Dist}
		}
		sink += checksum(nbs)
	}
	return sink, nil
}

// JoinBlock runs the identical join on the columnar path: one
// codec.DecodeBlock for the group, Block.PivotDistWindow for the
// Theorem-2 window, the fused NearestKRange kernel in squared space, and
// the single sqrt per survivor at emit time.
func JoinBlock(recs [][]byte, queries []vector.Point, k int, theta float64) (int64, error) {
	blk, _, _, err := codec.DecodeBlock(recs)
	if err != nil {
		return 0, err
	}
	heap := nnheap.NewKHeap(k)
	var cbuf []nnheap.Candidate
	var nbuf []codec.Neighbor
	var sink int64
	for _, q := range queries {
		qpd := norm(q)
		lo, hi := blk.PivotDistWindow(0, blk.Len(), qpd-theta, qpd+theta)
		heap.Reset()
		blk.NearestKRange(q, lo, hi, vector.L2, heap)
		cbuf = heap.AppendSorted(cbuf[:0])
		nbuf = driver.AppendNeighbors(nbuf[:0], cbuf, true)
		sink += checksum(nbuf)
	}
	return sink, nil
}

// JoinKernelBatch runs the same PGBJ-reducer-shaped join through the
// query-batched kernels at a selected tier: one codec.DecodeBlock plus
// Prepare(kern) for the group (mirror builds are part of the measured
// cost — reducers pay them per group), Theorem-2 windows for every
// query, then a single NearestKBatchRanges sweep that streams each
// S panel across the whole query batch. The checksum must equal
// JoinScalar's for every tier — the filter tiers only skip rows their
// certified lower bound proves out, and survivors re-rank exactly.
func JoinKernelBatch(recs [][]byte, queries []vector.Point, k int, theta float64, kern vector.Kernel) (int64, error) {
	blk, _, _, err := codec.DecodeBlock(recs)
	if err != nil {
		return 0, err
	}
	blk.Prepare(kern)
	lows := make([]int, len(queries))
	highs := make([]int, len(queries))
	heaps := make([]*nnheap.KHeap, len(queries))
	for i, q := range queries {
		qpd := norm(q)
		lows[i], highs[i] = blk.PivotDistWindow(0, blk.Len(), qpd-theta, qpd+theta)
		heaps[i] = nnheap.NewKHeap(k)
	}
	blk.NearestKBatchRanges(queries, lows, highs, vector.L2, heaps)
	var cbuf []nnheap.Candidate
	var nbuf []codec.Neighbor
	var sink int64
	for _, h := range heaps {
		cbuf = h.AppendSorted(cbuf[:0])
		nbuf = driver.AppendNeighbors(nbuf[:0], cbuf, true)
		sink += checksum(nbuf)
	}
	return sink, nil
}

// checksum folds a neighbor list — ids, order, AND distance bits — into
// an order-sensitive integer, so the scalar and block paths can be
// asserted to produce identical results, including the emit-time sqrt.
func checksum(nbs []codec.Neighbor) int64 {
	var s int64
	for i, nb := range nbs {
		s = s*31 + nb.ID*int64(i+1)
		s = s*31 + int64(math.Float64bits(nb.Dist))
	}
	return s
}
