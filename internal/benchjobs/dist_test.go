package benchjobs

import "testing"

// The two join paths must produce identical results — the block kernels
// change the representation and the sqrt placement, never the candidate
// sets or their order.
func TestJoinPathsAgree(t *testing.T) {
	for _, dim := range []int{2, 8, 32} {
		for _, n := range []int{0, 1, 50, 700} {
			recs := DistInput(n, dim, int64(n+dim))
			qs := DistQueries(9, dim, 42)
			theta, err := DistTheta(recs, DistWindowFrac)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 5, n + 1} {
				want, err := JoinScalar(recs, qs, k, theta)
				if err != nil {
					t.Fatal(err)
				}
				got, err := JoinBlock(recs, qs, k, theta)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("dim=%d n=%d k=%d: scalar %d, block %d", dim, n, k, want, got)
				}
			}
		}
	}
}

func TestDecodePathsAgree(t *testing.T) {
	recs := DistInput(120, 8, 7)
	a, err := DecodeScalar(recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != 120*8 {
		t.Fatalf("coord counts: scalar %d, block %d, want %d", a, b, 120*8)
	}
}

func TestDecodePathsRejectGarbage(t *testing.T) {
	bad := [][]byte{{1, 2, 3}}
	if _, err := DecodeScalar(bad); err == nil {
		t.Fatal("scalar decode accepted garbage")
	}
	if _, err := DecodeBlock(bad); err == nil {
		t.Fatal("block decode accepted garbage")
	}
}
