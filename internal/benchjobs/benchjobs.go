// Package benchjobs defines the shuffle micro-benchmark workloads in one
// place, so the go-test benchmarks (bench_test.go) and the JSON-emitting
// cmd/shufflebench measure the identical jobs and their numbers stay
// comparable across changes.
package benchjobs

import (
	"encoding/binary"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
)

// Records is the canonical input size; every job fans each record out to
// 16 emissions, so the shuffle always carries 16×Records records.
const Records = 2000

// Input builds the canonical input file: n 4-byte little-endian counters.
func Input(n int) []dfs.Record {
	in := make([]dfs.Record, n)
	for i := range in {
		r := make(dfs.Record, 4)
		binary.LittleEndian.PutUint32(r, uint32(i))
		in[i] = r
	}
	return in
}

// countingReduce drains its group and emits the count — trivial on
// purpose, so the measurement is the shuffle, not the reduce work.
func countingReduce(_ *mapreduce.TaskContext, key []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	n := 0
	for _, ok := values.Next(); ok; _, ok = values.Next() {
		n++
	}
	emit(key, binary.BigEndian.AppendUint32(nil, uint32(n)))
	return nil
}

// FlatJob fans each record out to 16 Uint32Key'd emissions over nKeys
// distinct keys: nKeys ≫ reducers measures the many-distinct-keys merge
// regime, small nKeys the few-keys/many-values grouping regime.
func FlatJob(nKeys int) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        "shuffle-flat",
		Input:       []string{"in"},
		Output:      "out",
		NumReducers: 8,
		Partition:   mapreduce.Uint32Partition,
		Map: func(_ *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
			base := int(binary.LittleEndian.Uint32(rec))
			for i := 0; i < 16; i++ {
				emit(codec.Uint32Key(uint32((base*16+i)%nKeys)), rec)
			}
			return nil
		},
		Reduce: countingReduce,
	}
}

// CompositeJob ships JoinKey composite keys grouped on the 4-byte prefix
// — the secondary-sort shape the pivot joins use since the shuffle took
// over SortByPivotDist.
func CompositeJob() *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "shuffle-composite",
		Input:          []string{"in"},
		Output:         "out",
		NumReducers:    8,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.JoinKeyGroupPrefix,
		Map: func(_ *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
			base := int64(binary.LittleEndian.Uint32(rec))
			for i := int64(0); i < 16; i++ {
				t := codec.Tagged{
					Object:    codec.Object{ID: base*16 + i},
					Src:       codec.FromS,
					Partition: int32((base + i) % 64),
					PivotDist: float64((base*16+i)%977) / 977,
				}
				emit(codec.JoinKey(int(t.Partition)%8, t), rec)
			}
			return nil
		},
		Reduce: countingReduce,
	}
}

// Run executes one benchmark job over a fresh in-memory cluster and the
// canonical input, returning the job's stats.
func Run(job *mapreduce.Job, in []dfs.Record) (*mapreduce.JobStats, error) {
	return RunEngine(job, in, mapreduce.Engine{})
}

// RunEngine is Run with an explicit execution backend, so the same
// workloads measure the in-memory and the spilling shuffle side by side
// (cmd/shufflebench's BENCH_spill.json series).
func RunEngine(job *mapreduce.Job, in []dfs.Record, eng mapreduce.Engine) (*mapreduce.JobStats, error) {
	c, err := mapreduce.NewClusterEngine(dfs.New(512), 8, eng)
	if err != nil {
		return nil, err
	}
	if err := c.FS().Write("in", in); err != nil {
		return nil, err
	}
	return c.Run(job)
}
