// Package bptree provides an in-memory B+-tree over float64 keys with
// duplicate support and ordered range scans.
//
// It exists as the storage substrate for the iDistance index
// (internal/idistance): the paper's §2.3 partitioning bounds descend from
// iDistance [9, 20], which maps multi-dimensional objects onto
// one-dimensional keys served by exactly this structure, and the IJoin
// method of related work [19] runs kNN joins on top of it.
package bptree

import "sort"

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 64

// Item is one stored entry: a key and an opaque value.
type Item struct {
	Key   float64
	Value int64
}

// Tree is a B+-tree over float64 keys. Duplicate keys are allowed; range
// scans return duplicates in insertion order. The zero value is not
// usable; construct with New.
type Tree struct {
	order int
	root  node
	size  int
	first *leaf // head of the leaf chain, for full scans
}

type node interface {
	// insert adds the item; when the node overflows it returns the new
	// right sibling and the key separating the two, else nil.
	insert(it Item, order int) (node, float64)
	// findLeaf descends to the leaf that would contain key.
	findLeaf(key float64) *leaf
	minKey() float64
}

type inner struct {
	keys     []float64
	children []node
}

type leaf struct {
	items []Item
	next  *leaf
}

// New creates an empty tree. order ≤ 3 selects DefaultOrder.
func New(order int) *Tree {
	if order <= 3 {
		order = DefaultOrder
	}
	lf := &leaf{}
	return &Tree{order: order, root: lf, first: lf}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Insert stores the item.
func (t *Tree) Insert(key float64, value int64) {
	right, sep := t.root.insert(Item{Key: key, Value: value}, t.order)
	t.size++
	if right != nil {
		t.root = &inner{keys: []float64{sep}, children: []node{t.root, right}}
	}
}

// Range returns all items with key in [lo, hi], in ascending key order
// (ties in insertion order).
func (t *Tree) Range(lo, hi float64) []Item {
	if hi < lo || t.size == 0 {
		return nil
	}
	var out []Item
	lf := t.root.findLeaf(lo)
	for lf != nil {
		for _, it := range lf.items {
			if it.Key > hi {
				return out
			}
			if it.Key >= lo {
				out = append(out, it)
			}
		}
		lf = lf.next
	}
	return out
}

// Ascend calls fn for every item with key ≥ from, in ascending order,
// until fn returns false.
func (t *Tree) Ascend(from float64, fn func(Item) bool) {
	lf := t.root.findLeaf(from)
	for lf != nil {
		for _, it := range lf.items {
			if it.Key >= from {
				if !fn(it) {
					return
				}
			}
		}
		lf = lf.next
	}
}

// Min returns the smallest key; ok is false on an empty tree.
func (t *Tree) Min() (float64, bool) {
	lf := t.first
	for lf != nil && len(lf.items) == 0 {
		lf = lf.next
	}
	if lf == nil {
		return 0, false
	}
	return lf.items[0].Key, true
}

// Height returns the number of levels, for diagnostics.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}

// ---- leaf ----------------------------------------------------------------

func (l *leaf) insert(it Item, order int) (node, float64) {
	// Position after any equal keys: duplicates keep insertion order.
	pos := sort.Search(len(l.items), func(i int) bool { return l.items[i].Key > it.Key })
	l.items = append(l.items, Item{})
	copy(l.items[pos+1:], l.items[pos:])
	l.items[pos] = it
	if len(l.items) <= order {
		return nil, 0
	}
	mid := len(l.items) / 2
	right := &leaf{items: append([]Item(nil), l.items[mid:]...), next: l.next}
	l.items = l.items[:mid:mid]
	l.next = right
	return right, right.items[0].Key
}

func (l *leaf) findLeaf(float64) *leaf { return l }

func (l *leaf) minKey() float64 {
	if len(l.items) == 0 {
		return 0
	}
	return l.items[0].Key
}

// ---- inner ----------------------------------------------------------------

func (n *inner) childFor(key float64) int {
	return sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
}

func (n *inner) insert(it Item, order int) (node, float64) {
	c := n.childFor(it.Key)
	right, sep := n.children[c].insert(it, order)
	if right == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[c+1:], n.keys[c:])
	n.keys[c] = sep
	n.children = append(n.children, nil)
	copy(n.children[c+2:], n.children[c+1:])
	n.children[c+1] = right
	if len(n.keys) <= order {
		return nil, 0
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	r := &inner{
		keys:     append([]float64(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return r, sepUp
}

func (n *inner) findLeaf(key float64) *leaf {
	// Descend left of equal separators so duplicate keys in the left
	// sibling are not skipped.
	c := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
	return n.children[c].findLeaf(key)
}

func (n *inner) minKey() float64 { return n.children[0].minKey() }
