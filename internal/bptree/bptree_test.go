package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty tree shape wrong")
	}
	if got := tr.Range(0, 100); got != nil {
		t.Fatalf("Range on empty = %v", got)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty should report !ok")
	}
}

func TestInsertAndRange(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), int64(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Range(10, 20)
	if len(got) != 11 {
		t.Fatalf("Range(10,20) returned %d items", len(got))
	}
	for i, it := range got {
		if it.Key != float64(10+i) || it.Value != int64(10+i) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New(4)
	for _, k := range []float64{1, 3, 5, 7, 9} {
		tr.Insert(k, int64(k))
	}
	if got := tr.Range(4, 2); got != nil {
		t.Fatal("inverted range should be empty")
	}
	if got := tr.Range(-10, 0); len(got) != 0 {
		t.Fatal("below-min range should be empty")
	}
	if got := tr.Range(10, 20); len(got) != 0 {
		t.Fatal("above-max range should be empty")
	}
	if got := tr.Range(3, 3); len(got) != 1 || got[0].Key != 3 {
		t.Fatalf("exact-key range = %v", got)
	}
	if got := tr.Range(0, 100); len(got) != 5 {
		t.Fatalf("covering range returned %d", len(got))
	}
}

func TestDuplicatesPreserved(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Insert(7, int64(i))
	}
	tr.Insert(6, 100)
	tr.Insert(8, 101)
	got := tr.Range(7, 7)
	if len(got) != 50 {
		t.Fatalf("got %d duplicates, want 50", len(got))
	}
	for i, it := range got {
		if it.Value != int64(i) {
			t.Fatalf("duplicate order broken at %d: %+v", i, it)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), int64(i))
	}
	var seen []float64
	tr.Ascend(90, func(it Item) bool {
		seen = append(seen, it.Key)
		return len(seen) < 5
	})
	if len(seen) != 5 || seen[0] != 90 || seen[4] != 94 {
		t.Fatalf("Ascend collected %v", seen)
	}
}

func TestMinAndHeight(t *testing.T) {
	tr := New(4)
	for i := 100; i > 0; i-- {
		tr.Insert(float64(i), int64(i))
	}
	if min, ok := tr.Min(); !ok || min != 1 {
		t.Fatalf("Min = %v, %v", min, ok)
	}
	if h := tr.Height(); h < 3 {
		t.Fatalf("height %d suspiciously small for order 4 with 100 keys", h)
	}
}

// Property: Range matches a sorted-slice scan for arbitrary inserts.
func TestRangeMatchesSliceQuick(t *testing.T) {
	f := func(keysRaw []int16, loRaw, hiRaw int16) bool {
		tr := New(5)
		var keys []float64
		for i, kr := range keysRaw {
			k := float64(kr % 100)
			tr.Insert(k, int64(i))
			keys = append(keys, k)
		}
		lo, hi := float64(loRaw%120), float64(hiRaw%120)
		got := tr.Range(lo, hi)
		sort.Float64s(keys)
		var want []float64
		for _, k := range keys {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
			if i > 0 && got[i].Key < got[i-1].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every inserted item is retrievable by exact-key range.
func TestNoLossQuick(t *testing.T) {
	f := func(keysRaw []int16) bool {
		tr := New(6)
		counts := make(map[float64]int)
		for i, kr := range keysRaw {
			k := float64(kr % 50)
			tr.Insert(k, int64(i))
			counts[k]++
		}
		if tr.Len() != len(keysRaw) {
			return false
		}
		for k, n := range counts {
			if len(tr.Range(k, k)) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargeRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New(32)
	keys := make([]float64, 20000)
	for i := range keys {
		keys[i] = rng.Float64() * 1000
		tr.Insert(keys[i], int64(i))
	}
	sort.Float64s(keys)
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*100
		got := tr.Range(lo, hi)
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: %d items, want %d", trial, len(got), want)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	tr := New(0)
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e6, int64(i))
	}
}

func BenchmarkRange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(0)
	for i := 0; i < 100000; i++ {
		tr.Insert(rng.Float64()*1e6, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 1e6
		tr.Range(lo, lo+1000)
	}
}
