// Package pgbj implements the paper's proposed kNN-join algorithms:
//
//   - PGBJ (§4–§5): the Partitioning-and-Grouping-Based Join. A
//     preprocessing step selects pivots from R; MapReduce job 1 Voronoi-
//     partitions R ∪ S and collects the summary tables TR/TS; the driver
//     groups R-partitions into one group per reducer (geometric or greedy
//     grouping); MapReduce job 2 routes each group's R objects and the
//     S replicas chosen by Theorem 6 to one reducer, which runs the
//     pruned join of Algorithm 3.
//   - PBJ (§6): the same pivot-based pruning without grouping, dropped
//     into the √N×√N block framework of H-BRJ, requiring a second
//     merge job.
//
// The phases are timed under the names Figure 6 uses: Pivot Selection,
// Data Partitioning, Index Merging, Partition Grouping, KNN Join.
package pgbj

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/grouping"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/pivot"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// GroupStrategy selects how R-partitions are clustered into reducer
// groups (§5.2).
type GroupStrategy int

const (
	// Geometric is Algorithm 4 (pivot-distance based, load balanced).
	Geometric GroupStrategy = iota
	// Greedy minimizes the Equation-12 replication estimate.
	Greedy
)

// String returns "geometric" or "greedy".
func (g GroupStrategy) String() string {
	switch g {
	case Geometric:
		return "geometric"
	case Greedy:
		return "greedy"
	}
	return fmt.Sprintf("GroupStrategy(%d)", int(g))
}

// ParseGroupStrategy converts a name into a GroupStrategy.
func ParseGroupStrategy(s string) (GroupStrategy, error) {
	switch s {
	case "geometric", "geo", "":
		return Geometric, nil
	case "greedy", "gr":
		return Greedy, nil
	}
	return Geometric, fmt.Errorf("pgbj: unknown grouping strategy %q", s)
}

// Options configures a PGBJ or PBJ run.
type Options struct {
	K             int
	Metric        vector.Metric
	NumPivots     int
	PivotStrategy pivot.Strategy
	GroupStrategy GroupStrategy
	Seed          int64

	// NumGroups is the number of reducer groups; zero means the cluster's
	// node count (the paper's one-reducer-per-node configuration).
	NumGroups int

	// Kernel selects the reduce-side distance scan tier (see
	// vector.Kernel): the group block is Prepared for this tier at
	// collection, and the Algorithm-3 candidate loop dispatches to it.
	// The zero value keeps the fused float64 block kernels. Every tier
	// produces bit-identical join results.
	Kernel vector.Kernel

	// Ablation switches (not in the paper's interface; used by the
	// ablation benchmarks to quantify each pruning rule's contribution).
	DisableHyperplanePruning bool // skip Corollary 1 in the reducer
	DisableWindowPruning     bool // skip Theorem 2 in the reducer
	// DisableNearestFirstOrder visits S-partitions in partition-id order
	// instead of ascending pivot gap — ablating Algorithm 3's line-14
	// heuristic ("if a pivot is near to p_i, then its partition often
	// has higher probability of containing objects closer to r"), which
	// tightens θ early and powers the other two rules.
	DisableNearestFirstOrder bool
}

func (o Options) validate(cluster *mapreduce.Cluster) (Options, error) {
	if o.K <= 0 {
		return o, fmt.Errorf("pgbj: k must be positive, got %d", o.K)
	}
	if o.NumPivots <= 0 {
		return o, fmt.Errorf("pgbj: NumPivots must be positive, got %d", o.NumPivots)
	}
	if o.NumGroups <= 0 {
		// One group per node, but never more groups than partitions —
		// tiny inputs would otherwise fail in the grouping phase. An
		// explicitly set NumGroups is honored verbatim (and grouping
		// reports the error if it exceeds NumPivots).
		o.NumGroups = cluster.Nodes()
		if o.NumGroups > o.NumPivots {
			o.NumGroups = o.NumPivots
		}
	}
	return o, nil
}

// side-data keys for the MapReduce jobs.
const (
	sidePivots   = "pivots"
	sideSummary  = "summary"
	sideThetas   = "thetas"
	sideGroupOf  = "groupOf"
	sideGroupLBs = "groupLBs"
	sideOpts     = "opts"
	sideBlocks   = "blocks"
)

// partitionSpec rebuilds the map-only Voronoi-partitioning job in a
// worker process: the Partitioner is reconstructed from the pivots and
// metric, which is all the map function consumes.
type partitionSpec struct {
	Name   string
	Inputs []string
	Output string
	Pivots []vector.Point
	Metric vector.Metric
}

var partitionKind = mapreduce.DefineKind("pgbj-partition", buildPartitionJob)

func buildPartitionJob(s partitionSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:   s.Name,
		Input:  s.Inputs,
		Output: s.Output,
		Side:   map[string]any{sidePivots: voronoi.NewPartitioner(s.Pivots, s.Metric)},
		Map:    partitionMap,
	}
}

// partitionMap tags one object of R or S with its nearest pivot
// (Figure 4).
func partitionMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	pp := ctx.Side(sidePivots).(*voronoi.Partitioner)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	var n int64
	part, d := pp.Assign(t.Point, &n)
	ctx.Counter("pairs", n)
	ctx.AddWork(n)
	t.Partition = int32(part)
	t.PivotDist = d
	emit(nil, codec.EncodeTagged(t))
	return nil
}

// PartitionJob builds the Voronoi-partitioning job (MapReduce job 1 of
// PGBJ, PBJ and the range join) as a registered kind, so it can execute
// on worker processes of a distributed cluster. name becomes the job
// name; inputs must hold Tagged records.
func PartitionJob(name string, inputs []string, output string, pivots []vector.Point, metric vector.Metric) *mapreduce.Job {
	return partitionKind.New(partitionSpec{
		Name: name, Inputs: inputs, Output: output, Pivots: pivots, Metric: metric,
	})
}

// joinSpec rebuilds MapReduce job 2 in a worker process: pivots (the
// Partitioner is reconstructed), the summary tables, the grouping
// products and the options — exactly the side data the map and reduce
// functions consume.
type joinSpec struct {
	Input, Output string
	Pivots        []vector.Point
	Summary       *voronoi.Summary
	Thetas        []float64
	GroupOf       []int
	GroupLBs      [][]float64
	Opts          Options
}

var joinKind = mapreduce.DefineKind("pgbj-join", buildJoinJob)

func buildJoinJob(s joinSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "pgbj-join",
		Input:          []string{s.Input},
		Output:         s.Output,
		NumReducers:    s.Opts.NumGroups,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.JoinKeyGroupPrefix,
		Side: map[string]any{
			sidePivots:   voronoi.NewPartitioner(s.Pivots, s.Opts.Metric),
			sideSummary:  s.Summary,
			sideThetas:   s.Thetas,
			sideGroupOf:  s.GroupOf,
			sideGroupLBs: s.GroupLBs,
			sideOpts:     s.Opts,
		},
		Map:    pgbjRouteMap,
		Reduce: pgbjJoinReduce,
	}
}

// Run executes the full PGBJ pipeline on the cluster. rFile and sFile must
// contain Tagged records (dataset.ToDFS); outFile receives codec.Result
// records, one per object of R.
func Run(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	opts, err := opts.validate(cluster)
	if err != nil {
		return nil, err
	}
	report := &stats.Report{
		Algorithm: "PGBJ-" + string(opts.PivotStrategy.String()[0]) + string(opts.GroupStrategy.String()[0]),
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	// ---- Phase 1: pivot selection (preprocessing on the master) --------
	pivots, err := selectPivots(cluster.FS(), rFile, opts, report)
	if err != nil {
		return nil, err
	}
	pp := voronoi.NewPartitioner(pivots, opts.Metric)

	// ---- Phase 2: MapReduce job 1 — data partitioning -------------------
	partFile := outFile + ".partitioned"
	if err := runPartitionJob(cluster, pivots, opts.Metric, []string{rFile, sFile}, partFile, report); err != nil {
		return nil, err
	}
	defer cluster.FS().Remove(partFile)

	// ---- Phase 3: index merging — build TR/TS from job-1 output ---------
	sum, err := buildSummary(cluster.FS(), partFile, pp, opts.K, cluster.Nodes(), report)
	if err != nil {
		return nil, err
	}

	// ---- Phase 4: partition grouping ------------------------------------
	start := time.Now()
	thetas := grouping.Thetas(sum, pp)
	var groups *grouping.Result
	switch opts.GroupStrategy {
	case Geometric:
		groups, err = grouping.Geometric(pp, sum, opts.NumGroups)
	case Greedy:
		groups, err = grouping.Greedy(pp, sum, opts.NumGroups, thetas)
	default:
		err = fmt.Errorf("pgbj: unknown group strategy %v", opts.GroupStrategy)
	}
	if err != nil {
		return nil, err
	}
	groupLBs := grouping.GroupLBs(pp, sum, thetas, groups)
	report.AddPhase("Partition Grouping", time.Since(start))

	// ---- Phase 5: MapReduce job 2 — the kNN join -------------------------
	// Keys are codec.JoinKey composites: the 4-byte group prefix selects
	// the reducer, and the (src, partition, pivot-distance, id) suffix
	// secondary-sorts the group so every S partition streams into the
	// reducer already in SortByPivotDist order. Built through the kind
	// registry so a distributed cluster can rebuild it in workers.
	job := joinKind.New(joinSpec{
		Input:    partFile,
		Output:   outFile,
		Pivots:   pivots,
		Summary:  sum,
		Thetas:   thetas,
		GroupOf:  groups.GroupOf,
		GroupLBs: groupLBs,
		Opts:     opts,
	})
	start = time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("KNN Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()
	report.OutputPairs = sumNeighborCount(js)
	return report, nil
}

func sumNeighborCount(js *mapreduce.JobStats) int64 {
	return js.Counters["result_pairs"]
}

// selectPivots reads R and runs the configured pivot-selection strategy,
// charging its time and distance computations to the report.
func selectPivots(fs dfs.Store, rFile string, opts Options, report *stats.Report) ([]vector.Point, error) {
	start := time.Now()
	tagged, err := fromDFS(fs, rFile)
	if err != nil {
		return nil, err
	}
	objs := make([]codec.Object, len(tagged))
	for i, t := range tagged {
		objs[i] = t.Object
	}
	var distCount int64
	pivots, err := pivot.Select(opts.PivotStrategy, objs, opts.NumPivots, pivot.Options{
		Metric:    opts.Metric,
		Seed:      opts.Seed,
		DistCount: &distCount,
	})
	if err != nil {
		return nil, err
	}
	report.Pairs += distCount
	report.AddPhase("Pivot Selection", time.Since(start))
	return pivots, nil
}

// runPartitionJob is MapReduce job 1: a map-only job that tags every
// object of R and S with its nearest pivot (Figure 4).
func runPartitionJob(cluster *mapreduce.Cluster, pivots []vector.Point, metric vector.Metric, inputs []string, outFile string, report *stats.Report) error {
	job := PartitionJob("pgbj-partition", inputs, outFile, pivots, metric)
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return err
	}
	report.AddPhase("Data Partitioning", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.SimMakespan += js.SimMapMakespan
	return nil
}

// buildSummary is the index-merging phase: it folds the partitioned file
// into the TR/TS summary tables, processing DFS chunks on a bounded
// worker pool and merging the partial builders, exactly as the paper
// merges per-split statistics when job 1 completes. The pool bound
// matters on the disk-backed store: at most `workers` splits are
// resident at once, preserving the out-of-core backend's memory bound.
func buildSummary(fs dfs.Store, partFile string, pp *voronoi.Partitioner, k, workers int, report *stats.Report) (*voronoi.Summary, error) {
	start := time.Now()
	splits, err := fs.Splits(partFile)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(splits) {
		workers = len(splits)
	}
	builders := make([]*voronoi.SummaryBuilder, len(splits))
	errs := make([]error, len(splits))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				b := voronoi.NewSummaryBuilder(pp.NumPartitions(), k)
				recs, err := splits[i].Load()
				if err != nil {
					errs[i] = err
					continue
				}
				for _, rec := range recs {
					t, err := codec.DecodeTagged(rec)
					if err != nil {
						errs[i] = err
						b = nil
						break
					}
					b.Add(t)
				}
				builders[i] = b
			}
		}()
	}
	for i := range splits {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(builders) == 0 {
		return nil, fmt.Errorf("pgbj: partitioned file %q is empty", partFile)
	}
	root := builders[0]
	for _, b := range builders[1:] {
		root.Merge(b)
	}
	sum := root.Finalize()
	report.AddPhase("Index Merging", time.Since(start))
	return sum, nil
}

// pgbjRouteMap is the map function of job 2 (Algorithm 3 lines 3–11 plus
// the Theorem-6 group routing): R objects go to their group; S objects
// replicate to every group whose LB admits them.
func pgbjRouteMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	groupOf := ctx.Side(sideGroupOf).([]int)
	groupLBs := ctx.Side(sideGroupLBs).([][]float64)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	switch t.Src {
	case codec.FromR:
		emit(codec.JoinKey(groupOf[t.Partition], t), rec)
	case codec.FromS:
		row := groupLBs[t.Partition]
		for g, lb := range row {
			if t.PivotDist >= lb {
				ctx.Counter("replicas_s", 1)
				emit(codec.JoinKey(g, t), rec)
			}
		}
	}
	return nil
}

// PartRange is one Voronoi partition's rows inside a GroupBlock: the
// partition id and the half-open row range holding its objects.
type PartRange struct {
	ID     int32
	Lo, Hi int
}

// GroupBlock is one reduce group of a codec.JoinKey-keyed job decoded
// columnarly: every value of the group in a single vector.Block, plus
// the R and S partition segmentation as index ranges into it. The
// shuffle's composite-key sort delivers R objects first, then S,
// partitions ascending, and each S partition ascending by pivot distance
// — so the ranges are contiguous, both range lists are ascending by
// partition id, and every S range is already in voronoi.SortByPivotDist
// order without a reducer-side sort. Shared by PGBJ, PBJ and the range
// join, whose key layout these invariants are tied to.
type GroupBlock struct {
	Block  *vector.Block
	RParts []PartRange
	SParts []PartRange
}

// CollectGroupBlock streams one reducer group into a GroupBlock: one
// flat coordinate array for the whole group (constant allocations
// instead of two per point) with partitions tracked as row ranges.
func CollectGroupBlock(values *mapreduce.Values) (*GroupBlock, error) {
	gb := &GroupBlock{Block: &vector.Block{}}
	var openSrc codec.Source
	var openPart int32
	for v, ok := values.Next(); ok; v, ok = values.Next() {
		src, part, err := codec.AppendTaggedToBlock(gb.Block, v)
		if err != nil {
			return nil, err
		}
		row := gb.Block.Len() - 1
		ranges := &gb.RParts
		if src == codec.FromS {
			ranges = &gb.SParts
		}
		if len(*ranges) == 0 || src != openSrc || part != openPart {
			*ranges = append(*ranges, PartRange{ID: part, Lo: row})
			openSrc, openPart = src, part
		}
		(*ranges)[len(*ranges)-1].Hi = row + 1
	}
	return gb, nil
}

// CollectGroupBlockKernel is CollectGroupBlock plus kernel tier
// attachment (vector.Block.Prepare) on the collected block, so the
// reducer's candidate loops run on the requested scan tier.
func CollectGroupBlockKernel(values *mapreduce.Values, k vector.Kernel) (*GroupBlock, error) {
	gb, err := CollectGroupBlock(values)
	if err != nil {
		return nil, err
	}
	gb.Block.Prepare(k)
	return gb, nil
}

// pgbjJoinReduce is the reduce function of job 2: Algorithm 3 lines 12–25
// over one group of R-partitions and its replica set S_i.
func pgbjJoinReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	pp := ctx.Side(sidePivots).(*voronoi.Partitioner)
	sum := ctx.Side(sideSummary).(*voronoi.Summary)
	thetas := ctx.Side(sideThetas).([]float64)
	opts := ctx.Side(sideOpts).(Options)

	gb, err := CollectGroupBlockKernel(values, opts.Kernel)
	if err != nil {
		return err
	}
	joinPartitions(ctx, pp, sum, thetas, opts, gb, emit)
	return nil
}

// thresholdDist returns the heap's current pruning distance in true
// metric space: def while the heap is not full, else the k-th best. When
// the heap holds squared L2 distances the one sqrt per (r, S-partition)
// pair happens here — not per candidate.
func thresholdDist(h *nnheap.KHeap, def float64, squared bool) float64 {
	if !h.Full() {
		return def
	}
	if squared {
		return math.Sqrt(h.Top().Dist) //lint:allow sqrtfree: one sqrt per (r, S-partition) pair converts the squared heap bound to the true-units θ Theorem 2 compares
	}
	return h.Top().Dist
}

// joinPartitions runs Algorithm 3's per-reducer join: every R object of
// the group block is joined against its S partition ranges using the θ
// bound, Corollary-1 hyperplane pruning and Theorem-2 windows. It is
// shared by PGBJ (full S_i replica sets) and PBJ (block subsets of S).
//
// The candidate loop runs on the block's fused kernels: Theorem-2
// windows are binary searches over the flat PivotDist slice
// (Block.PivotDistWindow), distances stay squared under L2 until the
// emit-time sqrt, and no per-candidate Point is ever allocated. The
// GroupBlock invariants (ranges ascending, S ranges pivot-distance
// sorted) come from the shuffle's composite-key secondary sort — see
// CollectGroupBlock — so no sorting happens here.
func joinPartitions(ctx *mapreduce.TaskContext, pp *voronoi.Partitioner, sum *voronoi.Summary,
	thetas []float64, opts Options, gb *GroupBlock, emit mapreduce.Emit) {

	blk := gb.Block
	squared := opts.Metric == vector.L2 // kernels defer the sqrt under L2

	// R rows are processed in query batches so each Theorem-2 window of
	// S is swept panel by panel across the whole batch (NearestKBatch-
	// Ranges) instead of once per row. Every row keeps its own heap and
	// its own running θ, the S-partition visit order and the per-row
	// prune decisions depend only on state that evolves exactly as in
	// the sequential loop, so the emitted results are bit-identical —
	// the batch only changes which row's window touches an S panel next.
	const batchRows = 64
	heaps := make([]*nnheap.KHeap, batchRows)
	for i := range heaps {
		heaps[i] = nnheap.NewKHeap(opts.K)
	}
	qs := make([]vector.Point, batchRows)
	rowTheta := make([]float64, batchRows)
	lows := make([]int, batchRows)
	highs := make([]int, batchRows)

	order := make([]PartRange, len(gb.SParts))
	var cbuf []nnheap.Candidate
	var nbuf []codec.Neighbor
	var pairs, resultPairs int64
	for _, rp := range gb.RParts {
		ri := rp.ID
		// Line 14: order S-partitions by ascending pivot gap to p_i, so
		// near partitions refine θ early. The ablation switch falls back
		// to plain partition-id order (which the ranges already are in).
		// The sort keys depend only on the R partition, not the row, so
		// one sort serves every row (and batch) of the partition.
		copy(order, gb.SParts)
		if !opts.DisableNearestFirstOrder {
			sort.Slice(order, func(a, b int) bool {
				ga, gb := pp.PivotDist(int(ri), int(order[a].ID)), pp.PivotDist(int(ri), int(order[b].ID))
				if ga != gb {
					return ga < gb
				}
				return order[a].ID < order[b].ID
			})
		}
		thetaI := thetas[ri]
		for base := rp.Lo; base < rp.Hi; base += batchRows {
			end := base + batchRows
			if end > rp.Hi {
				end = rp.Hi
			}
			nq := end - base
			for i := 0; i < nq; i++ {
				qs[i] = blk.At(base + i)
				heaps[i].Reset()
				rowTheta[i] = thetaI
			}
			for _, sp := range order {
				gap := pp.PivotDist(int(ri), int(sp.ID))
				for i := 0; i < nq; i++ {
					lows[i], highs[i] = 0, 0 // empty window unless the row survives the prunes
					r := qs[i]
					// |r, p_j| serves both Corollary 1 and Theorem 2; it is an
					// object–pivot distance, counted per the paper's Eq. 13 note.
					rToPj := opts.Metric.Dist(r, pp.Pivots[sp.ID])
					pairs++
					if !opts.DisableHyperplanePruning && sp.ID != ri {
						if voronoi.HyperplaneDist(rToPj, blk.PivotDist[base+i], gap, opts.Metric) > rowTheta[i] {
							continue // line 19–20: the whole partition is out
						}
					}
					lo, hi := sp.Lo, sp.Hi
					if !opts.DisableWindowPruning {
						wlo, whi, ok := voronoi.Theorem2Window(sum.S[sp.ID], rToPj, rowTheta[i])
						if !ok {
							continue
						}
						lo, hi = blk.PivotDistWindow(sp.Lo, sp.Hi, wlo, whi)
					}
					lows[i], highs[i] = lo, hi
				}
				pairs += blk.NearestKBatchRanges(qs[:nq], lows[:nq], highs[:nq], opts.Metric, heaps[:nq])
				// Line 24: θ tightens to the running k-th best, but the
				// window may admit candidates beyond θ_i, so never let θ
				// grow past the partition bound. θ is only read at the next
				// partition, so one update per partition suffices.
				for i := 0; i < nq; i++ {
					if t := thresholdDist(heaps[i], thetaI, squared); t < rowTheta[i] {
						rowTheta[i] = t
					}
				}
			}
			for i := 0; i < nq; i++ {
				cbuf = heaps[i].AppendSorted(cbuf[:0])
				nbuf = driver.AppendNeighbors(nbuf[:0], cbuf, squared)
				resultPairs += int64(len(nbuf))
				emit(nil, codec.EncodeResult(codec.Result{RID: blk.IDs[base+i], Neighbors: nbuf}))
			}
		}
	}
	ctx.Counter("pairs", pairs)
	ctx.Counter("result_pairs", resultPairs)
	ctx.AddWork(pairs)
}

// fromDFS decodes a file of Tagged records.
func fromDFS(fs dfs.Store, name string) ([]codec.Tagged, error) {
	recs, err := fs.Read(name)
	if err != nil {
		return nil, err
	}
	out := make([]codec.Tagged, len(recs))
	for i, r := range recs {
		t, err := codec.DecodeTagged(r)
		if err != nil {
			return nil, fmt.Errorf("pgbj: record %d of %q: %w", i, name, err)
		}
		out[i] = t
	}
	return out, nil
}
