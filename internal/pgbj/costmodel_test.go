package pgbj

import (
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/grouping"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// TestTheorem7PredictsActualShuffle re-derives the PGBJ routing state
// (pivots → partitions → summary → θ → groups → LB table) outside the
// pipeline and checks that the cost model of Theorem 7 predicts the
// pipeline's actual replication and shuffle record counts exactly:
//
//	ReplicasS      = RP(S)                        (Theorem 7)
//	ShuffleRecords = |R| + RP(S)                  (§3's |R| + α·|S|)
func TestTheorem7PredictsActualShuffle(t *testing.T) {
	objs := dataset.Forest(1500, 77)
	const (
		k         = 8
		numPivots = 40
		nodes     = 5
		seed      = 3
	)

	// Run the real pipeline.
	fs := dfs.New(128)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", objs, codec.FromR)
	dataset.ToDFS(fs, "S", objs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", Options{
		K: k, NumPivots: numPivots, PivotStrategy: pivot.Random,
		GroupStrategy: Geometric, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Re-derive the routing state exactly as the pipeline does.
	pivots, err := pivot.Select(pivot.Random, objs, numPivots, pivot.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	pp := voronoi.NewPartitioner(pivots, vector.L2)
	b := voronoi.NewSummaryBuilder(numPivots, k)
	rParts := pp.Partition(objs, codec.FromR, nil)
	sParts := pp.Partition(objs, codec.FromS, nil)
	for _, g := range rParts {
		for _, o := range g {
			b.Add(o)
		}
	}
	for _, g := range sParts {
		for _, o := range g {
			b.Add(o)
		}
		voronoi.SortByPivotDist(g)
	}
	sum := b.Finalize()
	thetas := grouping.Thetas(sum, pp)
	groups, err := grouping.Geometric(pp, sum, nodes)
	if err != nil {
		t.Fatal(err)
	}
	glbs := grouping.GroupLBs(pp, sum, thetas, groups)
	sDists := make([][]float64, numPivots)
	for i, g := range sParts {
		ds := make([]float64, len(g))
		for j, o := range g {
			ds[j] = o.PivotDist
		}
		sDists[i] = ds
	}
	predicted := grouping.ExactReplication(glbs, sDists)

	if rep.ReplicasS != predicted {
		t.Fatalf("actual replicas %d != Theorem 7 prediction %d", rep.ReplicasS, predicted)
	}
	if want := int64(len(objs)) + predicted; rep.ShuffleRecords != want {
		t.Fatalf("shuffle records %d != |R| + RP(S) = %d", rep.ShuffleRecords, want)
	}
}
