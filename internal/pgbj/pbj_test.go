package pgbj

import (
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
)

func runPBJ(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, *reportView) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := RunPBJ(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, &reportView{
		pairs:    rep.Pairs,
		replicas: rep.ReplicasS,
		shuffle:  rep.ShuffleRecords,
		phases:   len(rep.Phases),
	}
}

func TestPBJMatchesBruteForce(t *testing.T) {
	rObjs := dataset.Uniform(400, 3, 100, 21)
	sObjs := dataset.Uniform(450, 3, 100, 22)
	got, _ := runPBJ(t, rObjs, sObjs, defaultOpts(), 9)
	assertExact(t, got, rObjs, sObjs, 5, vector.L2)
}

func TestPBJForestSelfJoin(t *testing.T) {
	objs := dataset.Forest(600, 23)
	opts := defaultOpts()
	opts.NumPivots = 24
	got, _ := runPBJ(t, objs, objs, opts, 9)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPBJSkewedData(t *testing.T) {
	objs := dataset.OSM(500, 24)
	opts := defaultOpts()
	opts.K = 8
	got, _ := runPBJ(t, objs, objs, opts, 4)
	assertExact(t, got, objs, objs, 8, vector.L2)
}

func TestPBJNonSquareNodeCount(t *testing.T) {
	// 6 nodes → √6 rounds to 2 blocks → 4 reducers; must stay exact.
	objs := dataset.Uniform(300, 3, 100, 25)
	got, _ := runPBJ(t, objs, objs, defaultOpts(), 6)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPBJSingleNode(t *testing.T) {
	objs := dataset.Uniform(200, 2, 100, 26)
	got, _ := runPBJ(t, objs, objs, defaultOpts(), 1)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPBJVariousK(t *testing.T) {
	objs := dataset.Uniform(250, 3, 100, 27)
	for _, k := range []int{1, 3, 15} {
		opts := defaultOpts()
		opts.K = k
		got, _ := runPBJ(t, objs, objs, opts, 4)
		assertExact(t, got, objs, objs, k, vector.L2)
	}
}

func TestPBJPivotStrategies(t *testing.T) {
	objs := dataset.Forest(400, 28)
	for _, ps := range []pivot.Strategy{pivot.Random, pivot.KMeans} {
		opts := defaultOpts()
		opts.PivotStrategy = ps
		got, _ := runPBJ(t, objs, objs, opts, 4)
		assertExact(t, got, objs, objs, 5, vector.L2)
	}
}

// The paper's §3 accounting: the block framework replicates each S object
// √N times, so PBJ's replication must exceed PGBJ's at the same scale
// while both stay exact.
func TestPBJReplicationMatchesBlockFramework(t *testing.T) {
	objs := dataset.Forest(1000, 29)
	opts := defaultOpts()
	opts.NumPivots = 32
	nodes := 9 // √9 = 3 blocks
	_, rep := runPBJ(t, objs, objs, opts, nodes)
	if rep.replicas != int64(3*len(objs)) {
		t.Fatalf("PBJ replicas = %d, want √N·|S| = %d", rep.replicas, 3*len(objs))
	}
}

// PGBJ's grouping should beat PBJ on computation: the local θ bounds of
// PBJ are looser (§6.2's explanation for PBJ's slower joins).
func TestPGBJBeatsPBJOnPairs(t *testing.T) {
	objs := dataset.Forest(2000, 30)
	opts := defaultOpts()
	opts.NumPivots = 64
	nodes := 9
	_, pgbjRep := runPGBJ(t, objs, objs, opts, nodes)
	_, pbjRep := runPBJ(t, objs, objs, opts, nodes)
	if pgbjRep.pairs >= pbjRep.pairs {
		t.Fatalf("PGBJ pairs %d not below PBJ pairs %d", pgbjRep.pairs, pbjRep.pairs)
	}
}

func TestPBJKLargerThanS(t *testing.T) {
	rObjs := dataset.Uniform(30, 2, 100, 31)
	sObjs := dataset.Uniform(5, 2, 100, 32)
	opts := defaultOpts()
	opts.K = 9
	opts.NumPivots = 3
	got, _ := runPBJ(t, rObjs, sObjs, opts, 4)
	assertExact(t, got, rObjs, sObjs, 9, vector.L2)
}

func TestPBJValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := RunPBJ(cluster, "R", "S", "out", Options{K: 0, NumPivots: 2}); err == nil {
		t.Error("k=0 accepted")
	}
}
