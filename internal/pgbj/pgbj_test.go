package pgbj

import (
	"math"
	"testing"

	"knnjoin/internal/codec"
	"knnjoin/internal/dataset"
	"knnjoin/internal/dfs"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/naive"
	"knnjoin/internal/pivot"
	"knnjoin/internal/vector"
)

// runPGBJ loads R and S into a fresh cluster, runs PGBJ, and returns the
// sorted results plus the report.
func runPGBJ(t testing.TB, rObjs, sObjs []codec.Object, opts Options, nodes int) ([]codec.Result, *reportView) {
	t.Helper()
	fs := dfs.New(256)
	cluster := mapreduce.NewCluster(fs, nodes)
	dataset.ToDFS(fs, "R", rObjs, codec.FromR)
	dataset.ToDFS(fs, "S", sObjs, codec.FromS)
	rep, err := Run(cluster, "R", "S", "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.ReadResults(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	return got, &reportView{
		pairs:     rep.Pairs,
		replicas:  rep.ReplicasS,
		shuffle:   rep.ShuffleRecords,
		selectivy: rep.Selectivity(),
		phases:    len(rep.Phases),
	}
}

type reportView struct {
	pairs, replicas, shuffle int64
	selectivy                float64
	phases                   int
}

// assertExact verifies got equals the brute-force join by neighbor
// distances (ties may differ by ID, never by distance).
func assertExact(t *testing.T, got []codec.Result, rObjs, sObjs []codec.Object, k int, m vector.Metric) {
	t.Helper()
	want, _ := naive.BruteForce(rObjs, sObjs, k, m)
	if len(got) != len(want) {
		t.Fatalf("result rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d: RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		g, w := got[i].Neighbors, want[i].Neighbors
		if len(g) != len(w) {
			t.Fatalf("r %d: %d neighbors, want %d", got[i].RID, len(g), len(w))
		}
		for j := range w {
			if math.Abs(g[j].Dist-w[j].Dist) > 1e-9 {
				t.Fatalf("r %d neighbor %d: dist %v, want %v", got[i].RID, j, g[j].Dist, w[j].Dist)
			}
		}
	}
}

func defaultOpts() Options {
	return Options{K: 5, NumPivots: 16, PivotStrategy: pivot.Random, GroupStrategy: Geometric, Seed: 1}
}

func TestPGBJMatchesBruteForceUniform(t *testing.T) {
	rObjs := dataset.Uniform(400, 3, 100, 1)
	sObjs := dataset.Uniform(500, 3, 100, 2)
	got, _ := runPGBJ(t, rObjs, sObjs, defaultOpts(), 4)
	assertExact(t, got, rObjs, sObjs, 5, vector.L2)
}

func TestPGBJMatchesBruteForceForest(t *testing.T) {
	objs := dataset.Forest(800, 3)
	opts := defaultOpts()
	opts.NumPivots = 32
	got, _ := runPGBJ(t, objs, objs, opts, 8)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPGBJMatchesBruteForceSkewedOSM(t *testing.T) {
	objs := dataset.OSM(700, 4)
	opts := defaultOpts()
	opts.K = 10
	got, _ := runPGBJ(t, objs, objs, opts, 4)
	assertExact(t, got, objs, objs, 10, vector.L2)
}

func TestPGBJAllStrategyCombinations(t *testing.T) {
	objs := dataset.Forest(500, 5)
	for _, ps := range []pivot.Strategy{pivot.Random, pivot.Farthest, pivot.KMeans} {
		for _, gs := range []GroupStrategy{Geometric, Greedy} {
			opts := defaultOpts()
			opts.PivotStrategy = ps
			opts.GroupStrategy = gs
			got, _ := runPGBJ(t, objs, objs, opts, 4)
			assertExact(t, got, objs, objs, opts.K, vector.L2)
		}
	}
}

func TestPGBJVariousK(t *testing.T) {
	objs := dataset.Uniform(300, 4, 100, 6)
	for _, k := range []int{1, 2, 7, 25} {
		opts := defaultOpts()
		opts.K = k
		got, _ := runPGBJ(t, objs, objs, opts, 4)
		assertExact(t, got, objs, objs, k, vector.L2)
	}
}

func TestPGBJVariousDimensions(t *testing.T) {
	base := dataset.Forest(400, 7)
	for _, d := range []int{2, 5, 8} {
		objs := dataset.Project(base, d)
		got, _ := runPGBJ(t, objs, objs, defaultOpts(), 4)
		assertExact(t, got, objs, objs, 5, vector.L2)
	}
}

func TestPGBJAlternateMetrics(t *testing.T) {
	objs := dataset.Uniform(300, 3, 100, 8)
	for _, m := range []vector.Metric{vector.L1, vector.LInf} {
		opts := defaultOpts()
		opts.Metric = m
		got, _ := runPGBJ(t, objs, objs, opts, 4)
		assertExact(t, got, objs, objs, 5, m)
	}
}

func TestPGBJMoreGroupsThanNodes(t *testing.T) {
	objs := dataset.Uniform(300, 2, 100, 9)
	opts := defaultOpts()
	opts.NumGroups = 12 // groups exceed the 3 nodes: reducers handle several
	got, _ := runPGBJ(t, objs, objs, opts, 3)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPGBJSingleNode(t *testing.T) {
	objs := dataset.Uniform(200, 3, 100, 10)
	got, _ := runPGBJ(t, objs, objs, defaultOpts(), 1)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPGBJKLargerThanS(t *testing.T) {
	rObjs := dataset.Uniform(40, 2, 100, 11)
	sObjs := dataset.Uniform(6, 2, 100, 12)
	opts := defaultOpts()
	opts.K = 10
	opts.NumPivots = 4
	got, _ := runPGBJ(t, rObjs, sObjs, opts, 2)
	assertExact(t, got, rObjs, sObjs, 10, vector.L2)
}

func TestPGBJDuplicatePoints(t *testing.T) {
	objs := dataset.Uniform(100, 2, 5, 13) // tight range forces duplicates post-rounding
	for i := range objs {
		objs[i].Point[0] = math.Round(objs[i].Point[0])
		objs[i].Point[1] = math.Round(objs[i].Point[1])
	}
	opts := defaultOpts()
	opts.NumPivots = 8
	got, _ := runPGBJ(t, objs, objs, opts, 4)
	assertExact(t, got, objs, objs, 5, vector.L2)
}

func TestPGBJAblationPruningStillExact(t *testing.T) {
	objs := dataset.Forest(400, 14)
	for _, mod := range []func(*Options){
		func(o *Options) { o.DisableHyperplanePruning = true },
		func(o *Options) { o.DisableWindowPruning = true },
		func(o *Options) { o.DisableHyperplanePruning = true; o.DisableWindowPruning = true },
		func(o *Options) { o.DisableNearestFirstOrder = true },
		func(o *Options) {
			o.DisableHyperplanePruning = true
			o.DisableWindowPruning = true
			o.DisableNearestFirstOrder = true
		},
	} {
		opts := defaultOpts()
		mod(&opts)
		got, _ := runPGBJ(t, objs, objs, opts, 4)
		assertExact(t, got, objs, objs, 5, vector.L2)
	}
}

func TestPGBJNearestFirstOrderHelps(t *testing.T) {
	objs := dataset.Forest(2000, 21)
	opts := defaultOpts()
	opts.NumPivots = 64
	_, ordered := runPGBJ(t, objs, objs, opts, 4)
	opts.DisableNearestFirstOrder = true
	_, unordered := runPGBJ(t, objs, objs, opts, 4)
	// Visiting near partitions first tightens θ sooner: the heuristic must
	// not cost pairs, and on clustered data it should save some.
	if ordered.pairs > unordered.pairs {
		t.Fatalf("nearest-first order computed MORE pairs: %d vs %d", ordered.pairs, unordered.pairs)
	}
}

func TestPGBJPruningReducesPairs(t *testing.T) {
	objs := dataset.Forest(2000, 15)
	opts := defaultOpts()
	opts.NumPivots = 64
	_, pruned := runPGBJ(t, objs, objs, opts, 4)
	opts.DisableHyperplanePruning = true
	opts.DisableWindowPruning = true
	_, unpruned := runPGBJ(t, objs, objs, opts, 4)
	if pruned.pairs >= unpruned.pairs {
		t.Fatalf("pruning did not reduce pairs: %d vs %d", pruned.pairs, unpruned.pairs)
	}
	// The headline claim: selectivity far below the cross product.
	if pruned.selectivy > 0.5 {
		t.Fatalf("selectivity %.3f suspiciously close to a full cross product", pruned.selectivy)
	}
}

func TestPGBJReplicationBelowBroadcast(t *testing.T) {
	objs := dataset.Forest(1500, 16)
	opts := defaultOpts()
	opts.NumPivots = 48
	nodes := 6
	_, rep := runPGBJ(t, objs, objs, opts, nodes)
	// Broadcast would replicate every S object to all nodes.
	if rep.replicas >= int64(len(objs)*nodes) {
		t.Fatalf("replication %d not below broadcast %d", rep.replicas, len(objs)*nodes)
	}
}

func TestPGBJPhaseReport(t *testing.T) {
	objs := dataset.Uniform(200, 2, 100, 17)
	_, rep := runPGBJ(t, objs, objs, defaultOpts(), 2)
	if rep.phases != 5 { // pivot selection, partitioning, merging, grouping, join
		t.Fatalf("got %d phases, want 5", rep.phases)
	}
}

func TestPGBJOptionValidation(t *testing.T) {
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 2)
	if _, err := Run(cluster, "R", "S", "out", Options{K: 0, NumPivots: 4}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(cluster, "R", "S", "out", Options{K: 3, NumPivots: 0}); err == nil {
		t.Error("NumPivots=0 accepted")
	}
	if _, err := Run(cluster, "missing", "S", "out", Options{K: 3, NumPivots: 4}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestPGBJFewerPivotsThanGroupsFails(t *testing.T) {
	objs := dataset.Uniform(100, 2, 100, 18)
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 8)
	dataset.ToDFS(fs, "R", objs, codec.FromR)
	dataset.ToDFS(fs, "S", objs, codec.FromS)
	opts := defaultOpts()
	opts.NumPivots = 4
	opts.NumGroups = 8 // explicitly more groups than pivots: must error
	if _, err := Run(cluster, "R", "S", "out", opts); err == nil {
		t.Fatal("expected grouping error when pivots < explicit groups")
	}
}

func TestPGBJTinyInputAutoClampsGroups(t *testing.T) {
	// A 3-object dataset on an 8-node cluster must still work with
	// default options: the derived group count clamps to the pivot count.
	objs := dataset.Uniform(3, 2, 100, 19)
	fs := dfs.New(0)
	cluster := mapreduce.NewCluster(fs, 8)
	dataset.ToDFS(fs, "R", objs, codec.FromR)
	dataset.ToDFS(fs, "S", objs, codec.FromS)
	opts := defaultOpts()
	opts.NumPivots = 2
	opts.K = 2
	if _, err := Run(cluster, "R", "S", "out", opts); err != nil {
		t.Fatalf("tiny input failed: %v", err)
	}
}

func TestParseGroupStrategy(t *testing.T) {
	for s, want := range map[string]GroupStrategy{"geometric": Geometric, "geo": Geometric, "": Geometric, "greedy": Greedy, "gr": Greedy} {
		got, err := ParseGroupStrategy(s)
		if err != nil || got != want {
			t.Errorf("ParseGroupStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseGroupStrategy("alphabetic"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if Geometric.String() != "geometric" || Greedy.String() != "greedy" {
		t.Error("bad strings")
	}
	if GroupStrategy(7).String() != "GroupStrategy(7)" {
		t.Error("bad fallback string")
	}
}
