package pgbj

import (
	"math"
	"time"

	"knnjoin/internal/codec"
	"knnjoin/internal/dfs"
	"knnjoin/internal/driver"
	"knnjoin/internal/hbrj"
	"knnjoin/internal/mapreduce"
	"knnjoin/internal/nnheap"
	"knnjoin/internal/stats"
	"knnjoin/internal/vector"
	"knnjoin/internal/voronoi"
)

// RunPBJ executes PBJ (§6): pivot-based partitioning and pruning inside
// the √N×√N block framework of H-BRJ. Compared to PGBJ it skips the
// grouping phase; each reducer joins one (R-block, S-block) pair with a
// bound θ derived only from the S objects it received, and an extra
// MapReduce job merges the per-block partial results.
func RunPBJ(cluster *mapreduce.Cluster, rFile, sFile, outFile string, opts Options) (*stats.Report, error) {
	opts, err := opts.validate(cluster)
	if err != nil {
		return nil, err
	}
	report := &stats.Report{
		Algorithm: "PBJ",
		K:         opts.K,
		Nodes:     cluster.Nodes(),
		RSize:     cluster.FS().Size(rFile),
		SSize:     cluster.FS().Size(sFile),
	}

	// Phases 1–3 are identical to PGBJ: pivots, partitioning, summary.
	pivots, err := selectPivots(cluster.FS(), rFile, opts, report)
	if err != nil {
		return nil, err
	}
	pp := voronoi.NewPartitioner(pivots, opts.Metric)

	partFile := outFile + ".partitioned"
	if err := runPartitionJob(cluster, pivots, opts.Metric, []string{rFile, sFile}, partFile, report); err != nil {
		return nil, err
	}
	defer cluster.FS().Remove(partFile)

	sum, err := buildSummary(cluster.FS(), partFile, pp, opts.K, cluster.Nodes(), report)
	if err != nil {
		return nil, err
	}

	// Block join: Voronoi partitions are hashed into √N blocks per
	// dataset; reducer (a,b) joins R-block a against S-block b with the
	// pivot-based pruning of Algorithm 3 under a locally derived θ.
	b := hbrj.Blocks(cluster.Nodes())
	partialFile := outFile + ".partial"
	// Composite JoinKeys: the block id is the grouping prefix, and the
	// suffix streams each block's S partitions to the reducer already
	// sorted by pivot distance (the order localThetas and the Theorem-2
	// windows need).
	job := pbjKind.New(pbjSpec{
		Input:   partFile,
		Output:  partialFile,
		Pivots:  pivots,
		Summary: sum,
		Blocks:  b,
		Opts:    opts,
	})
	start := time.Now()
	js, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	report.AddPhase("KNN Join", time.Since(start))
	driver.AddJobStats(report, js)
	report.Pairs += js.Counters["pairs"]
	report.ShuffleBytes += js.ShuffleBytes
	report.ShuffleRecords += js.ShuffleRecords
	report.ReplicasS = js.Counters["replicas_s"]
	report.SimMakespan += js.SimMapMakespan + js.SimReduceMakespan
	report.JoinSkew = js.ReduceSkew()

	ms, err := hbrj.MergeResults(cluster, partialFile, outFile, opts.K)
	cluster.FS().Remove(partialFile)
	if err != nil {
		return nil, err
	}
	report.AddPhase("Result Merging", ms.Wall())
	driver.AddJobStats(report, ms)
	report.ShuffleBytes += ms.ShuffleBytes
	report.ShuffleRecords += ms.ShuffleRecords
	report.SimMakespan += ms.SimMapMakespan + ms.SimReduceMakespan
	report.OutputPairs = ms.Counters["result_pairs"]
	return report, nil
}

// pbjSpec rebuilds the PBJ block-join job in a worker process.
type pbjSpec struct {
	Input, Output string
	Pivots        []vector.Point
	Summary       *voronoi.Summary
	Blocks        int
	Opts          Options
}

var pbjKind = mapreduce.DefineKind("pbj-block-join", buildPBJJob)

func buildPBJJob(s pbjSpec) *mapreduce.Job {
	return &mapreduce.Job{
		Name:           "pbj-block-join",
		Input:          []string{s.Input},
		Output:         s.Output,
		NumReducers:    s.Blocks * s.Blocks,
		Partition:      mapreduce.Uint32Partition,
		GroupKeyPrefix: codec.JoinKeyGroupPrefix,
		Side: map[string]any{
			sidePivots:  voronoi.NewPartitioner(s.Pivots, s.Opts.Metric),
			sideSummary: s.Summary,
			sideOpts:    s.Opts,
			sideBlocks:  s.Blocks,
		},
		Map:    pbjRouteMap,
		Reduce: pbjJoinReduce,
	}
}

// pbjRouteMap replicates each object to its row or column of the √N×√N
// block grid: R-partition blocks join every S block and vice versa.
func pbjRouteMap(ctx *mapreduce.TaskContext, rec dfs.Record, emit mapreduce.Emit) error {
	b := ctx.Side(sideBlocks).(int)
	t, err := codec.DecodeTagged(rec)
	if err != nil {
		return err
	}
	blk := int(t.Partition) % b
	switch t.Src {
	case codec.FromR:
		for col := 0; col < b; col++ {
			emit(codec.JoinKey(blk*b+col, t), rec)
		}
	case codec.FromS:
		ctx.Counter("replicas_s", int64(b))
		for a := 0; a < b; a++ {
			emit(codec.JoinKey(a*b+blk, t), rec)
		}
	}
	return nil
}

// pbjJoinReduce joins one (R-block, S-block) pair. The bound θ for each
// R-partition is derived with Algorithm 1 restricted to the S-partitions
// this reducer received — the paper's "loose distance bound" that makes
// PBJ slower than PGBJ (§6.2).
func pbjJoinReduce(ctx *mapreduce.TaskContext, _ []byte, values *mapreduce.Values, emit mapreduce.Emit) error {
	pp := ctx.Side(sidePivots).(*voronoi.Partitioner)
	sum := ctx.Side(sideSummary).(*voronoi.Summary)
	opts := ctx.Side(sideOpts).(Options)

	// The shuffle's composite-key sort already delivers S partitions in
	// SortByPivotDist order and the partition ranges ascending.
	gb, err := CollectGroupBlock(values)
	if err != nil {
		return err
	}
	thetas := localThetas(pp, sum, opts.K, gb)
	joinPartitions(ctx, pp, sum, thetas, opts, gb, emit)
	return nil
}

// localThetas runs Algorithm 1 against only the received S-partitions:
// for R-partition i, θ_i is the k-th smallest upper bound
// U(P_i^R) + |p_i,p_j| + |s,p_j| over the first k objects of each local
// S-partition — the leading rows of each S range, since the block keeps
// them sorted by pivot distance.
func localThetas(pp *voronoi.Partitioner, sum *voronoi.Summary, k int, gb *GroupBlock) []float64 {
	thetas := make([]float64, pp.NumPartitions())
	for i := range thetas {
		thetas[i] = math.Inf(1)
	}
	for _, rp := range gb.RParts {
		uR := sum.R[rp.ID].U
		pq := nnheap.NewKHeap(k)
		for _, sp := range gb.SParts {
			gap := pp.PivotDist(int(rp.ID), int(sp.ID))
			limit := sp.Lo + k
			if limit > sp.Hi {
				limit = sp.Hi
			}
			for x := sp.Lo; x < limit; x++ {
				ub := voronoi.UpperBound(uR, gap, gb.Block.PivotDist[x])
				if pq.Full() && ub >= pq.Top().Dist {
					break
				}
				pq.Push(nnheap.Candidate{Dist: ub})
			}
		}
		if pq.Full() {
			thetas[rp.ID] = pq.Top().Dist
		}
	}
	return thetas
}
