package knnjoin

import "knnjoin/internal/mapreduce"

// Cluster mode: with Options.Workers > 0 every MapReduce job runs on
// separate worker processes — re-executions of the current binary —
// coordinated over an HTTP/JSON RPC protocol, with lease-based failure
// detection and task re-execution. Output is byte-identical to the
// default in-process engine; the mode exists to exercise and measure
// the coordination itself (see internal/mapreduce).

// RunWorkerIfSpawned turns the current process into a MapReduce worker
// when it was spawned as one (the coordinator re-executes the binary
// with a private environment variable) and never returns in that case.
// In the ordinary parent process it is a no-op.
//
// Any program that sets Options.Workers, RangeOptions.Workers or
// PairOptions.Workers must call it first thing in main — before flag
// parsing or any other work — and any test binary in its TestMain.
func RunWorkerIfSpawned() { mapreduce.RunWorkerIfSpawned() }

// FaultPlan is a deterministic fault-injection plan for worker
// processes: a testing hook that kills, stalls, freezes or corrupts
// workers at fixed task checkpoints. See the mapreduce package for the
// event fields.
type FaultPlan = mapreduce.FaultPlan

// FaultEvent is one injected fault of a FaultPlan.
type FaultEvent = mapreduce.FaultEvent

// FaultPoint locates a fault within a task attempt's lifecycle.
type FaultPoint = mapreduce.FaultPoint

// FaultAction is what an injected fault does to the worker.
type FaultAction = mapreduce.FaultAction

// Fault checkpoints and actions, re-exported for FaultPlan literals.
const (
	AtTaskStart  = mapreduce.AtTaskStart
	AtMidTask    = mapreduce.AtMidTask
	AtPreCommit  = mapreduce.AtPreCommit
	AtPostCommit = mapreduce.AtPostCommit

	ActKill        = mapreduce.ActKill
	ActSleep       = mapreduce.ActSleep
	ActFreeze      = mapreduce.ActFreeze
	ActTruncateRun = mapreduce.ActTruncateRun
)
