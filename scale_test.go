package knnjoin

// Large-scale correctness gates, skipped under -short: these runs take
// tens of seconds and exist to catch issues that only appear past toy
// sizes (bound tightness under deep recursion of the grouping, heap
// churn, shuffle framing at many-splits scale).

import (
	"math"
	"testing"

	"knnjoin/internal/dataset"
	"knnjoin/internal/rangejoin"
	"knnjoin/internal/topk"
	"knnjoin/internal/vector"
)

func TestLargeScalePGBJExact(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale verification in -short mode")
	}
	objs := dataset.Renumber(dataset.Expand(dataset.Forest(4000, 99), 5)) // 20K objects
	want, _, err := SelfJoin(objs, Options{K: 20, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := SelfJoin(objs, Options{K: 20, Nodes: 16, NumPivots: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID {
			t.Fatalf("row %d RID %d, want %d", i, got[i].RID, want[i].RID)
		}
		for j := range want[i].Neighbors {
			if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("r %d nb %d: %v, want %v", got[i].RID, j,
					got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
			}
		}
	}
	// At this scale pruning must be strong, not just present.
	if sel := st.Selectivity(); sel > 0.25 {
		t.Fatalf("selectivity %.3f at 20K objects — pruning regressed", sel)
	}
}

func TestLargeScaleAllExactAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale verification in -short mode")
	}
	objs := dataset.OSM(15000, 100)
	base, _, err := SelfJoin(objs, Options{K: 10, Nodes: 9, Seed: 8}) // PGBJ
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PBJ, HBRJ, Theta} {
		got, _, err := SelfJoin(objs, Options{K: 10, Algorithm: alg, Nodes: 9, Seed: 8})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i := range base {
			if got[i].RID != base[i].RID {
				t.Fatalf("%v: row %d RID mismatch", alg, i)
			}
			for j := range base[i].Neighbors {
				if math.Abs(got[i].Neighbors[j].Dist-base[i].Neighbors[j].Dist) > 1e-9 {
					t.Fatalf("%v: r %d nb %d distance mismatch", alg, got[i].RID, j)
				}
			}
		}
	}
}

func TestLargeScaleRangeJoinExact(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale verification in -short mode")
	}
	objs := dataset.OSM(20000, 101)
	want := rangejoin.BruteForce(objs, objs, 0.3, vector.L2)
	got, st, err := RangeJoin(objs, objs, RangeOptions{Radius: 0.3, Nodes: 16, NumPivots: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	var wantPairs int64
	for i := range want {
		wantPairs += int64(len(want[i].Neighbors))
		if got[i].RID != want[i].RID || len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("row %d mismatch: r=%d %d neighbors, want r=%d %d",
				i, got[i].RID, len(got[i].Neighbors), want[i].RID, len(want[i].Neighbors))
		}
	}
	if st.OutputPairs != wantPairs {
		t.Fatalf("output pairs %d, want %d", st.OutputPairs, wantPairs)
	}
	if sel := st.Selectivity(); sel > 0.25 {
		t.Fatalf("selectivity %.3f at 20K objects — range pruning regressed", sel)
	}
}

func TestLargeScaleClosestPairsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale verification in -short mode")
	}
	objs := dataset.Renumber(dataset.Expand(dataset.Forest(4000, 102), 5)) // 20K objects
	opts := PairOptions{K: 100, ExcludeSelf: true, Unordered: true, Nodes: 16, Seed: 10}
	got, st, err := ClosestPairs(objs, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := topk.BruteForce(objs, objs, topk.Options{
		K: 100, ExcludeSelf: true, Unordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pairs = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %v, want %v", i, got[i].Dist, want[i].Dist)
		}
	}
	cross := int64(len(objs)) * int64(len(objs))
	if st.Pairs >= cross/10 {
		t.Fatalf("computed %d of %d pairs — threshold pruning regressed", st.Pairs, cross)
	}
}
