package knnjoin

// One benchmark per table and figure of the paper's evaluation (§6).
// Each benchmark executes the corresponding experiment end to end at a
// reduced scale so `go test -bench=.` finishes in minutes; use
// `cmd/knnbench` for the full-scale reproduction and EXPERIMENTS.md for
// recorded results. The benchmarks report the experiment's headline
// metrics (selectivity, replication, shuffle bytes) as custom units so
// regressions in pruning quality surface as benchmark regressions, not
// just time.

import (
	"fmt"
	"io"
	"testing"

	"knnjoin/internal/benchjobs"
	"knnjoin/internal/dataset"
	"knnjoin/internal/experiments"
	"knnjoin/internal/mapreduce"
)

// benchCfg is the reduced benchmark scale: Forest×10 = 8000 objects.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.04, Seed: 1, Nodes: 8, K: 10}
}

func BenchmarkTable2PartitionStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3GroupStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TuningPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, _, err := r.Fig6and7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SelectivityReplication(b *testing.B) {
	// Figure 7's metrics come from the same sweep as Figure 6; this bench
	// isolates one representative configuration and reports its
	// selectivity and replication as custom metrics.
	r := experiments.NewRunner(benchCfg())
	objs := r.ForestX(10)
	b.ResetTimer()
	var sel, repl float64
	for i := 0; i < b.N; i++ {
		_, st, err := SelfJoin(objs, Options{K: 10, Nodes: 8, NumPivots: r.DefaultPivots(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		sel, repl = st.Selectivity()*1000, st.AvgReplication()
	}
	b.ReportMetric(sel, "selectivity-permille")
	b.ReportMetric(repl, "avg-replication")
}

func BenchmarkFig8EffectOfK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9EffectOfKOSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Dimensionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Scalability(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.02 // the ×25 point dominates otherwise
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		if _, err := r.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-algorithm joins at a fixed workload, for side-by-side comparison in
// -bench output (the paper's headline: PGBJ < PBJ < H-BRJ).
func benchmarkAlgorithm(b *testing.B, alg Algorithm) {
	objs := dataset.Forest(6000, 1)
	b.ResetTimer()
	var sel float64
	for i := 0; i < b.N; i++ {
		_, st, err := SelfJoin(objs, Options{K: 10, Algorithm: alg, Nodes: 9, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		sel = st.Selectivity() * 1000
	}
	b.ReportMetric(sel, "selectivity-permille")
}

func BenchmarkJoinPGBJ(b *testing.B)      { benchmarkAlgorithm(b, PGBJ) }
func BenchmarkJoinPBJ(b *testing.B)       { benchmarkAlgorithm(b, PBJ) }
func BenchmarkJoinHBRJ(b *testing.B)      { benchmarkAlgorithm(b, HBRJ) }
func BenchmarkJoinBroadcast(b *testing.B) { benchmarkAlgorithm(b, Broadcast) }
func BenchmarkJoinTheta(b *testing.B)     { benchmarkAlgorithm(b, Theta) }
func BenchmarkJoinZKNN(b *testing.B)      { benchmarkAlgorithm(b, ZKNN) }
func BenchmarkJoinLSH(b *testing.B)       { benchmarkAlgorithm(b, LSH) }

func BenchmarkZKNNRecallCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.ZKNN(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSHRecallCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.LSH(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineFrameworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKClosestPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.TopKPairs(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReducerSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.Skew(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.SetSim(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeJoinSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchCfg())
		if _, err := r.RangeJoinExp(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLOFOutlierScoring(b *testing.B) {
	objs := dataset.Forest(6000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LOF(objs, 10, Options{Nodes: 9, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Shuffle micro-benchmarks ----------------------------------------
//
// These isolate the engine's sort-merge shuffle (map-side sorted runs,
// k-way merge, streaming key groups) from the join algorithms: trivial
// map and reduce work, so ns/op and allocs/op are the shuffle itself.
// The keys=32000 case measures the many-distinct-keys regime (merge jobs
// keyed by object id); keys=256 measures the few-keys/many-values regime
// (block joins keyed by reducer id); the secondary-sort case measures
// composite JoinKey-style keys with a grouping prefix (the PGBJ join).
// The job definitions live in internal/benchjobs, shared with
// cmd/shufflebench so BENCH_shuffle.json measures the identical work.

func benchmarkShuffle(b *testing.B, job *mapreduce.Job) {
	in := benchjobs.Input(benchjobs.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchjobs.Run(job, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffleSortMerge(b *testing.B) {
	for _, keys := range []int{32000, 256} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			benchmarkShuffle(b, benchjobs.FlatJob(keys))
		})
	}
}

// Composite keys with a 4-byte grouping prefix and a pivot-distance
// suffix — the shape every pivot-join job ships since the shuffle took
// over SortByPivotDist.
func BenchmarkShuffleSecondarySort(b *testing.B) {
	benchmarkShuffle(b, benchjobs.CompositeJob())
}

// ---- Distance-path micro-benchmarks ----------------------------------
//
// These isolate the reduce-side distance path: decoding a reducer value
// group and running the PGBJ-shaped windowed join, through the legacy
// per-Object path (scalar) and the columnar Block path (block). The
// workloads live in internal/benchjobs, shared with cmd/distbench so
// BENCH_dist.json records the identical work.

func BenchmarkDistDecode(b *testing.B) {
	for _, dim := range []int{2, 8, 32} {
		recs := benchjobs.DistInput(10000, dim, 1)
		b.Run(fmt.Sprintf("scalar/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchjobs.DecodeScalar(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("block/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchjobs.DecodeBlock(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistPGBJReduce(b *testing.B) {
	const k, queries = 10, 64
	for _, dim := range []int{2, 8, 32} {
		recs := benchjobs.DistInput(10000, dim, 1)
		qs := benchjobs.DistQueries(queries, dim, 2)
		theta, err := benchjobs.DistTheta(recs, benchjobs.DistWindowFrac)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("scalar/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchjobs.JoinScalar(recs, qs, k, theta); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("block/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchjobs.JoinBlock(recs, qs, k, theta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistKernelTiers is the kernel tier matrix on the same
// PGBJ-reducer workload, through the query-batched kernels — the rows
// `distbench -suite kernels` records in BENCH_dist.json.
func BenchmarkDistKernelTiers(b *testing.B) {
	const k, queries = 10, 64
	for _, dim := range []int{2, 8, 32} {
		recs := benchjobs.DistInput(10000, dim, 1)
		qs := benchjobs.DistQueries(queries, dim, 2)
		theta, err := benchjobs.DistTheta(recs, benchjobs.DistWindowFrac)
		if err != nil {
			b.Fatal(err)
		}
		for _, kern := range []Kernel{KernelScalar, KernelBlock, KernelF32, KernelQuantized} {
			b.Run(fmt.Sprintf("%v/d=%d", kern, dim), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := benchjobs.JoinKernelBatch(recs, qs, k, theta, kern); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Guard: the full experiment suite stays runnable end to end.
func BenchmarkAllExperimentsTiny(b *testing.B) {
	cfg := experiments.Config{Scale: 0.008, Seed: 1, Nodes: 4, K: 5}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		if err := r.All(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
