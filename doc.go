// Package knnjoin computes exact k-nearest-neighbor joins over
// multi-dimensional data on an emulated MapReduce cluster, implementing
// "Efficient Processing of k Nearest Neighbor Joins using MapReduce"
// (Lu, Shen, Chen, Ooi — PVLDB 5(10), 2012).
//
// The kNN join R ⋉ S pairs every object r of R with its k nearest
// neighbors in S. The package's flagship algorithm is PGBJ, the paper's
// Voronoi-partitioning + grouping join; the baselines it was evaluated
// against (PBJ, H-BRJ, the broadcast strategy and a centralized
// brute-force join) and two approximate methods from its related work
// (H-zkNNJ under ZKNN, RankReduce-style hashing under LSH) are provided
// under the same API.
//
// # The API surface
//
// Four join operators, all driven by plain slices of Object:
//
//   - Join computes KNN(r, S) for every r of R; SelfJoin is the R = S
//     workload the paper evaluates. Options selects the Algorithm, the
//     Metric (L2, L1, LInf), the simulated cluster size, and PGBJ's
//     pivot/grouping strategies; the zero value of every field but K is
//     usable.
//   - RangeJoin returns every (r, s) pair within a fixed radius θ — the
//     paper's machinery with the query radius standing in for the
//     derived bound (its Definition 3 and §2.3 range theorem).
//   - ClosestPairs returns the k closest pairs of R × S (Kim & Shim's
//     top-k similarity join, the "special case" of the paper's §7).
//   - LOF scores every object's local outlier factor over a kNN
//     self-join — the paper's §1 motivating application.
//
// Every operator also returns a *Stats carrying the paper's evaluation
// measures — per-phase wall time, distance-computation selectivity
// (Equation 13), shuffle bytes, S-replication, reducer skew, and the
// per-MapReduce-job breakdown in Stats.Jobs — so the trade-offs are
// observable on your own data. Helpers round the surface out:
// ExcludeSelf post-processes self-join results, the Parse* functions
// turn CLI strings into the option enums.
//
// Callers who would rather not hand-pick the configuration can set
// Options.Algorithm to Auto: the cost-based planner samples both
// datasets, evaluates the paper's cost model (Theorem-7 replication,
// Theorem-2 window selectivity, shuffle volume, spill pressure) across
// every exact algorithm and a grid of tuning knobs, executes the
// cheapest plan, and records the choice with its predictions in
// Stats.Plan. AutoPlan returns the full ranked candidate list without
// executing anything — EXPLAIN for kNN joins (cmd/knnplan is its CLI).
//
// Joins larger than memory run on the out-of-core execution backend:
// setting Options.SpillDir (or just Options.MemLimit) moves dataset
// chunks and map-side sorted runs to disk, and reducers stream the runs
// back through a bounded-memory k-way merge. Results are byte-identical
// to the in-memory backend; only the memory ceiling moves.
//
// Quick start (see ExampleJoin for the runnable form):
//
//	results, stats, err := knnjoin.Join(r, s, knnjoin.Options{K: 10})
//
// Every algorithm except the deliberately approximate ZKNN and LSH
// returns exact results, verified equal to the brute-force oracle across
// seed sweeps; they differ only in cost.
//
// See ARCHITECTURE.md at the repository root for the map from the
// paper's sections onto the internal packages, the shuffle pipeline, the
// binary key layouts, and the columnar block data flow that powers the
// reduce-side distance kernels.
package knnjoin
